"""AlphaRegex baseline tests: correctness, pruning soundness, budgets,
and agreement with Paresy on optimal costs."""

import pytest

from repro import ALPHAREGEX_COST, CostFunction, Spec, synthesize
from repro.baselines.alpharegex import (
    _replace_leftmost,
    _substitute_holes,
    alpharegex_synthesize,
)
from repro.regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    HOLE,
    Star,
    Union,
)


class TestHoleMechanics:
    def test_replace_leftmost_simple(self):
        assert _replace_leftmost(HOLE, Char("0")) == Char("0")

    def test_replace_leftmost_picks_left_hole(self):
        state = Union(HOLE, HOLE)
        replaced = _replace_leftmost(state, Char("0"))
        assert replaced == Union(Char("0"), HOLE)

    def test_replace_leftmost_descends(self):
        state = Concat(Star(Char("0")), Union(Char("1"), HOLE))
        replaced = _replace_leftmost(state, EPSILON)
        assert replaced == Concat(Star(Char("0")), Union(Char("1"), EPSILON))

    def test_replace_without_hole_raises(self):
        with pytest.raises(ValueError):
            _replace_leftmost(Char("0"), Char("1"))

    def test_substitute_all_holes(self):
        state = Union(HOLE, Concat(HOLE, Char("0")))
        out = _substitute_holes(state, EMPTY)
        assert out == Union(EMPTY, Concat(EMPTY, Char("0")))


class TestSynthesis:
    def test_trivial_empty(self):
        result = alpharegex_synthesize(Spec([], ["0"]))
        assert result.found
        assert result.regex == EMPTY

    def test_trivial_epsilon(self):
        result = alpharegex_synthesize(Spec([""], ["0"]))
        assert result.found
        assert result.regex == EPSILON

    def test_single_char(self):
        spec = Spec(["0"], ["", "1", "00"])
        result = alpharegex_synthesize(spec)
        assert result.found
        assert result.regex_str == "0"

    def test_intro_example(self, intro_spec):
        result = alpharegex_synthesize(intro_spec)
        assert result.found
        assert intro_spec.is_satisfied_by(result.regex)
        # Under the (5,...,5) scale the minimum is 40 (Paresy agrees).
        assert result.cost == 40

    def test_result_is_always_precise(self):
        specs = [
            Spec(["0", "00"], ["", "1"]),
            Spec(["01", "0011"], ["", "0", "1"]),
            Spec(["1", "10", "100"], ["", "0"]),
        ]
        for spec in specs:
            result = alpharegex_synthesize(spec)
            assert result.found
            assert spec.is_satisfied_by(result.regex)

    def test_agrees_with_paresy_on_cost(self):
        spec = Spec(["0", "00", "000"], ["", "1", "01"])
        ours = synthesize(spec, cost_fn=ALPHAREGEX_COST)
        theirs = alpharegex_synthesize(spec)
        assert ours.found and theirs.found
        assert ours.cost == theirs.cost


class TestPruning:
    def test_pruning_counters_grow(self, intro_spec):
        result = alpharegex_synthesize(intro_spec)
        assert result.pruned_over > 0
        assert result.pruned_under > 0

    def test_pruning_is_sound_for_precision(self):
        # Many specs; pruning must never lose *all* solutions.
        specs = [
            Spec(["10"], ["01", ""]),
            Spec(["0", "1"], [""]),
            Spec(["11", "1111"], ["", "1", "111"]),
        ]
        for spec in specs:
            result = alpharegex_synthesize(spec)
            assert result.found, str(spec)

    def test_subsumption_pruning_option_runs(self, tiny_spec):
        result = alpharegex_synthesize(
            tiny_spec, example_subsumption_pruning=True
        )
        assert result.found
        assert tiny_spec.is_satisfied_by(result.regex)


class TestBudgets:
    def test_checked_budget(self, intro_spec):
        result = alpharegex_synthesize(intro_spec, max_checked=1)
        assert result.status == "budget"
        assert result.regex is None

    def test_expanded_budget(self, intro_spec):
        result = alpharegex_synthesize(intro_spec, max_expanded=5)
        assert result.status == "budget"

    def test_counters_present(self, intro_spec):
        result = alpharegex_synthesize(intro_spec)
        assert result.expanded > result.checked >= 1
        assert result.elapsed_seconds >= 0.0


class TestCostOrdering:
    def test_returns_minimal_with_nonuniform_costs(self):
        spec = Spec(["0", "00"], ["", "1", "10"])
        cost_fn = CostFunction.from_tuple((2, 1, 3, 2, 4))
        ar = alpharegex_synthesize(spec, cost_fn=cost_fn)
        paresy = synthesize(spec, cost_fn=cost_fn)
        assert ar.found
        assert ar.cost == paresy.cost
