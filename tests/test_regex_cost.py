"""Unit tests for cost homomorphisms."""

import pytest

from repro.regex.ast import Char, Concat, EMPTY, EPSILON, HOLE, Question, Star, Union
from repro.regex.cost import (
    ALPHAREGEX_COST,
    EVALUATION_COST_FUNCTIONS,
    CostFunction,
)
from repro.regex.parser import parse


class TestConstruction:
    def test_uniform(self):
        assert CostFunction.uniform().as_tuple() == (1, 1, 1, 1, 1)

    def test_from_tuple_order_matches_paper(self):
        cf = CostFunction.from_tuple((5, 2, 7, 2, 19))
        assert cf.star == 7  # the paper's worked example: cost(*) = 7
        assert cf.literal == 5
        assert cf.question == 2
        assert cf.concat == 2
        assert cf.union == 19

    def test_costs_must_be_positive(self):
        with pytest.raises(ValueError):
            CostFunction(0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            CostFunction(1, 1, -3, 1, 1)

    def test_from_tuple_wrong_arity(self):
        with pytest.raises(ValueError):
            CostFunction.from_tuple((1, 2, 3))


class TestCost:
    def test_atoms_cost_c1(self):
        cf = CostFunction.from_tuple((7, 1, 1, 1, 1))
        assert cf.cost(EMPTY) == 7
        assert cf.cost(EPSILON) == 7
        assert cf.cost(Char("0")) == 7
        assert cf.cost(HOLE) == 7

    def test_homomorphism_equations(self):
        cf = CostFunction.from_tuple((1, 2, 3, 4, 5))
        r = Char("0")
        assert cf.cost(Question(r)) == cf.cost(r) + 2
        assert cf.cost(Star(r)) == cf.cost(r) + 3
        assert cf.cost(Concat(r, r)) == 2 * cf.cost(r) + 4
        assert cf.cost(Union(r, r)) == 2 * cf.cost(r) + 5

    def test_paper_intro_example_cost(self):
        # 10(0+1)* has cost 8 under (1,1,1,1,1).
        assert CostFunction.uniform().cost(parse("10(0+1)*")) == 8

    def test_alpharegex_scale(self):
        # Same expression at 5x scale.
        assert ALPHAREGEX_COST.cost(parse("10(0+1)*")) == 40


class TestWordAndOverfitCosts:
    def test_word_cost(self):
        cf = CostFunction.uniform()
        assert cf.word_cost("") == 1
        assert cf.word_cost("0") == 1
        assert cf.word_cost("011") == 3 + 2  # three chars, two concats

    def test_overfit_cost_empty_positives(self):
        assert CostFunction.uniform().overfit_cost([]) == 1  # ∅

    def test_overfit_cost_only_epsilon(self):
        assert CostFunction.uniform().overfit_cost([""]) == 1  # ε

    def test_overfit_cost_mixture(self):
        cf = CostFunction.uniform()
        # ("0" + "11")? = cost(0) + cost(11) + union + question = 1+3+1+1
        assert cf.overfit_cost(["", "0", "11"]) == 6

    def test_overfit_cost_is_an_upper_bound(self):
        from repro import Spec, synthesize

        spec = Spec(positive=["0", "11"], negative=["1"])
        result = synthesize(spec)
        assert result.found
        assert result.cost <= CostFunction.uniform().overfit_cost(spec.positive)


class TestEvaluationCostFunctions:
    def test_twelve_of_them(self):
        assert len(EVALUATION_COST_FUNCTIONS) == 12

    def test_first_is_uniform(self):
        assert EVALUATION_COST_FUNCTIONS[0] == CostFunction.uniform()

    def test_last_is_paper_mixed(self):
        assert EVALUATION_COST_FUNCTIONS[-1].as_tuple() == (20, 20, 20, 5, 30)

    def test_min_constructor_cost(self):
        cf = CostFunction.from_tuple((1, 2, 3, 4, 5))
        # min(question=2, star=3, concat+literal=5, union+literal=6) = 2
        assert cf.min_constructor_cost == 2
        assert CostFunction.uniform().min_constructor_cost == 1
