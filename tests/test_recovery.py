"""Crash-recovery tests: fault harness, durable checkpoints, job retry.

The headline acceptance criteria live in :class:`TestCheckpointResume`
(a query interrupted after *any* completed cost level resumes from that
level and answers **bit-identically** to an uninterrupted run, on both
backends) and :class:`TestPoolRecoverySmoke` (a job whose worker is
SIGKILLed mid-run is retried with backoff on a respawned worker and
completes, with the attempt count in the result extras; a poison job is
quarantined instead of killing the pool).
"""

import json
import pickle

import numpy as np
import pytest

from repro import EngineConfig, Session, Spec, SynthesisRequest
from repro.core.cache import cache_version_fingerprint
from repro.regex.cost import CostFunction
from repro.service import (
    CheckpointStore,
    JobFailedError,
    ServiceClient,
    StoreBackedSession,
    checkpoint_key,
    staging_fingerprint,
)
from repro.service.store import StagingStore, atomic_write_bytes
from repro.testing import faults
from repro.testing.faults import (
    FaultSpecError,
    corrupt_file,
    fault_point,
    inject,
    parse_spec,
    truncate_file,
)

#: Small but non-trivial: five full cost levels before the solution.
SPEC = Spec(positive=["00", "010", "0110"], negative=["", "11", "101"])

BACKENDS = ("vector", "scalar")

#: Result fields that must match bit-for-bit between an uninterrupted
#: run and a resumed one.
IDENTITY_FIELDS = (
    "status", "regex", "cost", "generated", "unique_cs", "levels_built",
)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no fault armed."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_FAULTS_DIR, raising=False)
    faults.reset()
    yield
    faults.reset()


def interrupted_after(session, spec, levels):
    """Run ``spec`` on ``session`` but cancel after ``levels`` levels."""
    count = {"n": 0}

    def on_progress(event):
        if not event.done:
            count["n"] += 1

    request = SynthesisRequest(
        spec=spec,
        on_progress=on_progress,
        cancel=lambda: count["n"] >= levels,
    )
    return session.synthesize(request)


def assert_identical(resumed, reference):
    for field in IDENTITY_FIELDS:
        assert getattr(resumed, field) == getattr(reference, field), field
    assert resumed.extra["level_stats"] == reference.extra["level_stats"]


# ----------------------------------------------------------------------
# The fault-injection harness itself
# ----------------------------------------------------------------------
class TestFaultHarness:
    def test_spec_grammar(self):
        table = parse_spec(
            "pool.worker.before_job:kill:2:once, checkpoint.append:raise"
        )
        fault = table["pool.worker.before_job"]
        assert (fault.action, fault.hit, fault.once) == ("kill", 2, True)
        fault = table["checkpoint.append"]
        assert (fault.action, fault.hit, fault.once) == ("raise", 1, False)

    @pytest.mark.parametrize("bad", ["justapoint", "p:frobnicate", "p:raise:x"])
    def test_malformed_specs_are_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_unarmed_points_are_noops(self):
        fault_point("nothing.armed.here")

    def test_raise_fires_on_the_nth_arrival_then_disarms(self):
        inject("t.point", "raise", hit=3)
        fault_point("t.point")
        fault_point("t.point")
        with pytest.raises(OSError):
            fault_point("t.point")
        fault_point("t.point")  # disarmed after firing

    def test_environment_arming_and_reset(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "t.env:raise")
        faults.reset()  # next arrival re-reads the environment
        with pytest.raises(OSError):
            fault_point("t.env")
        monkeypatch.delenv(faults.ENV_FAULTS)
        faults.reset()
        fault_point("t.env")

    def test_once_sentinel_claims_across_rearms(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.ENV_FAULTS_DIR, str(tmp_path))
        inject("t.once", "raise", once=True)
        with pytest.raises(OSError):
            fault_point("t.once")
        # A re-armed copy (as a respawned process would have) loses the
        # O_EXCL sentinel race and stays silent.
        inject("t.once", "raise", once=True)
        fault_point("t.once")

    def test_corruption_helpers(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"abcdef")
        truncate_file(path, 3)
        assert path.read_bytes() == b"abc"
        corrupt_file(path, offset=1)
        assert path.read_bytes() == bytes([ord("a"), ord("b") ^ 0xFF, ord("c")])


# ----------------------------------------------------------------------
# Store satellites: atomic writes and pickle quarantine
# ----------------------------------------------------------------------
class TestAtomicWriteFaults:
    def test_failed_write_leaves_no_temp_and_keeps_old_content(self, tmp_path):
        target = tmp_path / "value.pkl"
        atomic_write_bytes(target, b"old")
        inject("store.atomic_write_bytes", "raise")
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"old"
        assert list(tmp_path.glob("*.tmp")) == []


class TestPickleStoreQuarantine:
    def make_store(self, tmp_path):
        store = StagingStore(tmp_path / "staging")
        store.save("k", {"payload": 1})
        return store, store._path("k")

    def test_truncated_blob_quarantines_and_misses(self, tmp_path):
        store, path = self.make_store(tmp_path)
        truncate_file(path, path.stat().st_size // 2)
        assert store.load("k") is None
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()
        # The address self-heals on the next save.
        store.save("k", {"payload": 2})
        assert store.load("k") == {"payload": 2}

    def test_bitrot_quarantines(self, tmp_path):
        store, path = self.make_store(tmp_path)
        corrupt_file(path, offset=path.stat().st_size // 2)
        assert store.load("k") is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_version_skew_quarantines(self, tmp_path):
        store, path = self.make_store(tmp_path)
        path.write_bytes(pickle.dumps(("repro-store", 999, {"payload": 1})))
        assert store.load("k") is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_unwrapped_legacy_blob_quarantines(self, tmp_path):
        store, path = self.make_store(tmp_path)
        path.write_bytes(pickle.dumps({"payload": 1}))
        assert store.load("k") is None
        assert path.with_name(path.name + ".corrupt").exists()


# ----------------------------------------------------------------------
# The checkpoint store
# ----------------------------------------------------------------------
def checkpoints_of(backend, spec):
    """Every completed level of a solo run, as LevelCheckpoints."""
    session = Session(EngineConfig(backend=backend))
    engine = session.make_engine(SynthesisRequest(spec=spec))
    taken = []

    def snap(cost, start, end):
        taken.append(engine.level_checkpoint(cost, start, end))
        return False

    engine.on_level = snap
    engine.run(40)
    return taken


class TestCheckpointStore:
    def test_key_is_stable_and_cost_fn_sensitive(self):
        fp = staging_fingerprint(SPEC)
        uniform = checkpoint_key(fp, CostFunction.uniform())
        assert uniform == checkpoint_key(fp, CostFunction.uniform())
        other = checkpoint_key(fp, CostFunction.from_tuple((1, 1, 10, 1, 1)))
        assert uniform != other
        assert cache_version_fingerprint() != fp  # distinct namespaces

    def test_roundtrip_and_duplicate_dedupe(self, tmp_path):
        store = CheckpointStore(tmp_path)
        levels = checkpoints_of("vector", SPEC)
        assert len(levels) >= 4
        key = checkpoint_key(staging_fingerprint(SPEC), CostFunction.uniform())
        for level in levels:
            assert store.append_level(key, level) is True
        assert store.append_level(key, levels[0]) is False  # already there
        loaded = store.load_levels(key)
        assert [lv.cost for lv in loaded] == [lv.cost for lv in levels]
        for got, want in zip(loaded, levels):
            assert got.generated_total == want.generated_total
            for field in ("rows", "ops", "lefts", "rights", "ordinals"):
                assert np.array_equal(getattr(got, field), getattr(want, field))

    def fill(self, tmp_path):
        store = CheckpointStore(tmp_path)
        levels = checkpoints_of("vector", SPEC)
        key = checkpoint_key(staging_fingerprint(SPEC), CostFunction.uniform())
        for level in levels:
            store.append_level(key, level)
        return store, key, levels

    def test_truncated_journal_serves_prefix_and_heals(self, tmp_path):
        store, key, levels = self.fill(tmp_path)
        journal = store._journal_path(key)
        truncate_file(journal, journal.stat().st_size - 25)
        loaded = store.load_levels(key)
        assert 0 < len(loaded) == len(levels) - 1
        assert [lv.cost for lv in loaded] == [lv.cost for lv in levels[:-1]]
        # The manifest was healed down to the surviving prefix, and the
        # lost tail can be re-journalled (offsets skip the torn bytes).
        assert store.levels_recorded(key) == [lv.cost for lv in loaded]
        assert store.append_level(key, levels[-1]) is True
        assert len(store.load_levels(key)) == len(levels)

    def test_bitrot_stops_the_prefix_at_the_damaged_record(self, tmp_path):
        store, key, levels = self.fill(tmp_path)
        records = store._read_manifest(key)
        # Flip a byte inside the SECOND record's payload.
        corrupt_file(
            store._journal_path(key),
            offset=records[1]["offset"] + 60,
        )
        loaded = store.load_levels(key)
        assert [lv.cost for lv in loaded] == [levels[0].cost]

    def test_missing_journal_or_manifest_is_empty(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_levels("nothing") == []
        _, key, _ = self.fill(tmp_path / "full")
        full = CheckpointStore(tmp_path / "full")
        full._manifest_path(key).unlink()
        assert full.load_levels(key) == []


# ----------------------------------------------------------------------
# Checkpoint GC: the --checkpoint-budget LRU eviction
# ----------------------------------------------------------------------
class TestCheckpointPrune:
    @staticmethod
    def seed(tmp_path, sizes, base_mtime=1_000_000.0):
        """Fabricate journals of the given sizes, oldest first."""
        import os

        store = CheckpointStore(tmp_path)
        for index, size in enumerate(sizes):
            key = "key%02d" % index
            store._journal_path(key).write_bytes(b"x" * size)
            store._manifest_path(key).write_text("{}", encoding="utf-8")
            mtime = base_mtime + index
            os.utime(store._journal_path(key), (mtime, mtime))
        return store

    def test_no_budget_is_a_noop(self, tmp_path):
        store = self.seed(tmp_path, [100, 200])
        stats = store.prune()
        assert stats["removed_keys"] == 0
        assert stats["kept_keys"] == 2
        assert sorted(store.keys()) == ["key00", "key01"]

    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        store = self.seed(tmp_path, [100, 100, 100])
        # 3 keys x 102 bytes (journal + "{}" manifest); budget keeps 2.
        stats = store.prune(max_bytes=2 * 102)
        assert stats["removed_keys"] == 1
        assert stats["removed_bytes"] == 102
        assert store.keys() == ["key01", "key02"]  # key00 was oldest
        assert not store._manifest_path("key00").exists()
        assert not (tmp_path / "key00.lock").exists()

    def test_age_budget_drops_idle_keys(self, tmp_path):
        store = self.seed(tmp_path, [50, 50], base_mtime=1_000.0)
        stats = store.prune(max_age_s=100.0, now=1_100.5)
        # key00 (mtime 1000) is 100.5s idle, key01 (mtime 1001) 99.5s.
        assert stats["removed_keys"] == 1
        assert store.keys() == ["key01"]

    def test_pruned_key_recovers_as_a_cold_run(self, tmp_path):
        store = CheckpointStore(tmp_path)
        levels = checkpoints_of("vector", SPEC)
        key = checkpoint_key(staging_fingerprint(SPEC), CostFunction.uniform())
        for level in levels:
            store.append_level(key, level)
        assert store.prune(max_bytes=0)["removed_keys"] == 1
        assert store.load_levels(key) == []  # cold, not corrupt
        assert store.append_level(key, levels[0]) is True  # re-journals

    def test_size_of_counts_journal_and_manifest(self, tmp_path):
        store = self.seed(tmp_path, [64])
        assert store.size_of("key00") == 64 + 2
        assert store.size_of("missing") == 0


# ----------------------------------------------------------------------
# Checkpointed sessions: kill at every level, resume bit-identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointResume:
    def test_resume_from_every_kill_level_is_bit_identical(
        self, backend, tmp_path
    ):
        config = EngineConfig(backend=backend)
        reference = Session(config).synthesize(SPEC)
        assert reference.status == "success"
        for kill_after in range(1, reference.levels_built + 1):
            store = CheckpointStore(tmp_path / ("kill%d" % kill_after))
            crashed = StoreBackedSession(config, checkpoint_store=store)
            partial = interrupted_after(crashed, SPEC, kill_after)
            assert partial.status == "cancelled"
            assert crashed.checkpoint_saves >= kill_after
            resumed_session = StoreBackedSession(
                config, checkpoint_store=store
            )
            resumed = resumed_session.synthesize(SPEC)
            assert resumed_session.resumed_queries == 1
            assert resumed.extra["resumed_levels"] >= kill_after
            assert_identical(resumed, reference)

    def test_completed_query_re_serves_all_levels(self, backend, tmp_path):
        config = EngineConfig(backend=backend)
        store = CheckpointStore(tmp_path)
        first_session = StoreBackedSession(config, checkpoint_store=store)
        first = first_session.synthesize(SPEC)
        again_session = StoreBackedSession(config, checkpoint_store=store)
        again = again_session.synthesize(SPEC)
        assert again.extra["resumed_levels"] == first.levels_built
        assert again_session.checkpoint_saves == 0  # nothing new to journal
        assert_identical(again, first)

    def test_cross_backend_checkpoint_reuse(self, backend, tmp_path):
        # Checkpoints are keyed by (universe, cost function, layout
        # version) only: what one backend journals, the other resumes.
        other = "scalar" if backend == "vector" else "vector"
        store = CheckpointStore(tmp_path)
        writer = StoreBackedSession(
            EngineConfig(backend=backend), checkpoint_store=store
        )
        written = writer.synthesize(SPEC)
        reader_session = StoreBackedSession(
            EngineConfig(backend=other), checkpoint_store=store
        )
        resumed = reader_session.synthesize(SPEC)
        assert reader_session.resumed_queries == 1
        assert resumed.extra["resumed_levels"] > 0
        assert_identical(resumed, written)

    def test_damaged_checkpoints_degrade_to_a_cold_run(self, backend, tmp_path):
        config = EngineConfig(backend=backend)
        store = CheckpointStore(tmp_path)
        StoreBackedSession(config, checkpoint_store=store).synthesize(SPEC)
        for journal in tmp_path.glob("*.journal"):
            corrupt_file(journal, offset=10)
        session = StoreBackedSession(config, checkpoint_store=store)
        resumed = session.synthesize(SPEC)
        reference = Session(config).synthesize(SPEC)
        assert_identical(resumed, reference)

    def test_layout_version_fingerprint_invalidates(
        self, backend, tmp_path, monkeypatch
    ):
        config = EngineConfig(backend=backend)
        store = CheckpointStore(tmp_path)
        StoreBackedSession(config, checkpoint_store=store).synthesize(SPEC)
        import repro.service.checkpoint as checkpoint_module

        monkeypatch.setattr(
            checkpoint_module,
            "cache_version_fingerprint",
            lambda: "a-new-packed-layout",
        )
        session = StoreBackedSession(config, checkpoint_store=store)
        result = session.synthesize(SPEC)
        assert session.resumed_queries == 0  # stale journals not replayed
        assert result.extra["resumed_levels"] == 0
        assert_identical(result, Session(config).synthesize(SPEC))


def test_batched_sweeps_checkpoint_and_resume(tmp_path):
    specs = [SPEC, Spec(positive=["010", "0110"], negative=["00", "11", ""])]
    config = EngineConfig(backend="vector")
    reference = [Session(config).synthesize(s) for s in specs]
    store = CheckpointStore(tmp_path)
    first = StoreBackedSession(config, checkpoint_store=store)
    for got, want in zip(first.synthesize_many(specs), reference):
        assert (got.regex, got.cost, got.status) == (
            want.regex, want.cost, want.status)
    assert first.checkpoint_saves > 0
    second = StoreBackedSession(config, checkpoint_store=store)
    results = second.synthesize_many(specs)
    assert results[0].extra["resumed_levels"] > 0
    for got, want in zip(results, reference):
        assert (got.regex, got.cost, got.status) == (
            want.regex, want.cost, want.status)


# ----------------------------------------------------------------------
# Pool-level recovery (the CI recovery-smoke scenario)
# ----------------------------------------------------------------------
class TestPoolRecoverySmoke:
    def arm(self, monkeypatch, tmp_path, spec):
        monkeypatch.setenv(faults.ENV_FAULTS, spec)
        monkeypatch.setenv(faults.ENV_FAULTS_DIR, str(tmp_path / "sentinels"))
        (tmp_path / "sentinels").mkdir(exist_ok=True)
        faults.reset()  # forked workers re-read the environment

    def test_killed_worker_job_is_retried_and_completes(
        self, monkeypatch, tmp_path
    ):
        self.arm(monkeypatch, tmp_path, "pool.worker.before_job:kill:1:once")
        reference = Session(EngineConfig(backend="vector")).synthesize(SPEC)
        with ServiceClient(
            workers=2,
            config=EngineConfig(backend="vector"),
            store_dir=str(tmp_path / "store"),
            retry_backoff_s=0.02,
        ) as client:
            result = client.synthesize(SPEC, timeout=120)
            stats = client.stats
        assert result.status == "success"
        assert result.regex == reference.regex
        assert result.extra["attempts"] == 2
        assert stats["retries"] == 1
        assert stats["respawns"] == 1
        assert stats["quarantined"] == 0
        assert stats["failed"] == 0

    def test_worker_killed_mid_checkpointing_resumes_on_retry(
        self, monkeypatch, tmp_path
    ):
        # The acceptance combo: the worker dies AFTER journalling level
        # 3 (mid-append, manifest not yet updated), and the retried job
        # resumes from the last manifest-visible level instead of
        # re-enumerating from level 1 — bit-identical to a solo run.
        self.arm(monkeypatch, tmp_path, "checkpoint.append:kill:3:once")
        reference = Session(EngineConfig(backend="vector")).synthesize(SPEC)
        with ServiceClient(
            workers=2,
            config=EngineConfig(backend="vector"),
            store_dir=str(tmp_path / "store"),
            retry_backoff_s=0.02,
        ) as client:
            result = client.synthesize(SPEC, timeout=120)
            stats = client.stats
        assert result.status == "success"
        assert result.extra["attempts"] == 2
        assert result.extra["resumed_levels"] >= 2
        assert result.regex == reference.regex
        assert result.cost == reference.cost
        assert result.generated == reference.generated
        assert result.extra["level_stats"] == reference.extra["level_stats"]
        assert stats["retries"] == 1 and stats["respawns"] == 1

    def test_poison_job_is_quarantined_with_its_error(
        self, monkeypatch, tmp_path
    ):
        # No ``once``: the job kills every worker that touches it.
        self.arm(monkeypatch, tmp_path, "pool.worker.before_job:kill")
        store_dir = tmp_path / "store"
        with ServiceClient(
            workers=2,
            config=EngineConfig(backend="vector"),
            store_dir=str(store_dir),
            retry_backoff_s=0.02,
            retry_max_attempts=2,
        ) as client:
            handle = client.submit(SPEC)
            with pytest.raises(JobFailedError, match="attempts=2"):
                handle.result(timeout=120)
            stats = client.stats
        assert stats["quarantined"] == 1
        records = list((store_dir / "quarantine").glob("*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["attempts"] == 2
        assert record["fingerprint"] == records[0].stem
        assert "died" in record["error"]
        assert record["request"]["spec"]["positive"] == list(SPEC.positive)


# ----------------------------------------------------------------------
# Shard-coordinator failover
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_dead_shard_worker_falls_back_to_serial(backend, tmp_path, monkeypatch):
    from repro.language.guide_table import GuideTable
    from repro.language.universe import Universe
    from repro.core.scalar_engine import ScalarEngine
    from repro.core.vector_engine import VectorEngine

    engines = {"scalar": ScalarEngine, "vector": VectorEngine}
    universe = Universe(SPEC.all_words, alphabet=SPEC.alphabet)
    guide = GuideTable(universe)

    def run(shard_workers, armed):
        if armed:
            # Armed pre-fork: the forked shard workers inherit the
            # fault table and die at their first emit round; the parent
            # never visits the point.
            inject("shard.worker.emit", "kill")
        engine = engines[backend](
            SPEC, CostFunction.uniform(), universe, guide,
            shard_workers=shard_workers,
        )
        engine.shard_min_candidates = 0
        status = engine.run(40)
        faults.reset()
        return engine, status

    serial, serial_status = run(1, armed=False)
    sharded, sharded_status = run(3, armed=True)
    assert sharded.shard_failovers >= 1
    assert sharded.shard_workers == 1  # sharding disabled after failover
    assert sharded_status == serial_status
    assert sharded.generated == serial.generated
    assert sharded.levels_built == serial.levels_built
    assert sharded.level_stats == serial.level_stats
    assert sharded.solution == serial.solution
    assert sharded.solution_cost == serial.solution_cost
