"""Printer/parser unit tests and the round-trip property."""

import pytest
from hypothesis import given, settings

from _fixtures import regexes
from repro.regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    HOLE,
    Question,
    Star,
    Union,
)
from repro.regex.parser import RegexSyntaxError, parse
from repro.regex.printer import to_string


class TestPrinter:
    def test_atoms(self):
        assert to_string(EMPTY) == "∅"
        assert to_string(EPSILON) == "ε"
        assert to_string(Char("0")) == "0"
        assert to_string(HOLE) == "□"

    def test_minimal_parentheses(self):
        regex = Union(Char("0"), Star(Concat(Char("1"), Char("0"))))
        assert to_string(regex) == "0+(10)*"

    def test_union_in_concat_is_parenthesised(self):
        regex = Concat(Char("1"), Union(Char("0"), Char("1")))
        assert to_string(regex) == "1(0+1)"

    def test_postfix_on_atom_needs_no_parens(self):
        assert to_string(Star(Char("0"))) == "0*"
        assert to_string(Question(Char("0"))) == "0?"

    def test_postfix_on_union_is_parenthesised(self):
        assert to_string(Star(Union(Char("0"), Char("1")))) == "(0+1)*"

    def test_nested_postfix(self):
        assert to_string(Star(Star(Char("0")))) == "0**"

    def test_escapes_special_literals(self):
        assert to_string(Char("+")) == "\\+"
        assert to_string(Char("(")) == "\\("


class TestParser:
    def test_atoms(self):
        assert parse("ε") == EPSILON
        assert parse("∅") == EMPTY
        assert parse("□") == HOLE
        assert parse("a") == Char("a")

    def test_union_is_left_associative(self):
        assert parse("0+1+0") == Union(Union(Char("0"), Char("1")), Char("0"))

    def test_pipe_is_union(self):
        assert parse("0|1") == Union(Char("0"), Char("1"))

    def test_concat_binds_tighter_than_union(self):
        assert parse("01+1") == Union(Concat(Char("0"), Char("1")), Char("1"))

    def test_postfix_binds_tightest(self):
        assert parse("01*") == Concat(Char("0"), Star(Char("1")))
        assert parse("(01)*") == Star(Concat(Char("0"), Char("1")))

    def test_question(self):
        assert parse("0?1") == Concat(Question(Char("0")), Char("1"))

    def test_whitespace_ignored(self):
        assert parse(" 0 + 1 ") == parse("0+1")

    def test_escape(self):
        assert parse("\\+") == Char("+")

    def test_paper_intro_regex(self):
        regex = parse("10(0+1)*")
        assert to_string(regex) == "10(0+1)*"

    @pytest.mark.parametrize(
        "bad", ["", "(", ")", "0+", "*", "(0", "0)", "+1", "\\"]
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse(bad)


class TestRoundTrip:
    @given(regexes(max_leaves=8))
    @settings(max_examples=120, deadline=None)
    def test_parse_inverts_print_up_to_associativity(self, regex):
        from repro.regex.simplify import left_associate

        assert parse(to_string(regex)) == left_associate(regex)

    @given(regexes(max_leaves=8))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_language(self, regex):
        from repro.regex import dfa

        assert dfa.regex_equivalent(parse(to_string(regex)), regex, "01")
