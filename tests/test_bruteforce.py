"""Brute-force baseline tests."""

from repro import CostFunction, Spec
from repro.baselines.bruteforce import bruteforce_synthesize
from repro.regex.ast import EMPTY, EPSILON


class TestTrivials:
    def test_empty_language(self):
        result = bruteforce_synthesize(Spec([], ["0"]))
        assert result.found and result.regex == EMPTY

    def test_epsilon(self):
        result = bruteforce_synthesize(Spec([""], ["1"]))
        assert result.found and result.regex == EPSILON

    def test_char(self):
        result = bruteforce_synthesize(Spec(["1"], ["", "0"]))
        assert result.found and result.regex_str == "1"


class TestSearch:
    def test_finds_star(self):
        spec = Spec(["", "0", "00", "000"], ["1", "01"])
        result = bruteforce_synthesize(spec)
        assert result.found
        assert result.regex_str == "0*"
        assert result.cost == 2

    def test_finds_union(self):
        spec = Spec(["0", "1"], ["", "00", "11"])
        result = bruteforce_synthesize(spec)
        assert result.found
        assert result.cost == 3  # 0+1

    def test_result_is_precise(self):
        spec = Spec(["01", "0101"], ["", "0", "1", "10"])
        result = bruteforce_synthesize(spec)
        assert result.found
        assert spec.is_satisfied_by(result.regex)

    def test_not_found_within_budget(self):
        spec = Spec(["010101"], ["01"])
        result = bruteforce_synthesize(spec, max_cost=3)
        assert not result.found
        assert result.status == "not_found"

    def test_checked_counter(self):
        result = bruteforce_synthesize(Spec(["0"], ["1"]))
        assert result.checked >= 3  # ∅, ε, then chars

    def test_nonuniform_cost(self):
        spec = Spec(["", "0"], ["1"])
        cost_fn = CostFunction.from_tuple((1, 5, 9, 1, 1))
        result = bruteforce_synthesize(spec, cost_fn=cost_fn, max_cost=12)
        assert result.found
        assert cost_fn.cost(result.regex) == result.cost
