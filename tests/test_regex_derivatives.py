"""Derivative-matcher tests, cross-checked against the NFA simulator."""

from hypothesis import given, settings

from _fixtures import regexes, words
from repro.regex import nfa
from repro.regex.ast import Char, EMPTY, EPSILON
from repro.regex.derivatives import (
    derivative,
    matches,
    nullable,
    satisfies,
    word_derivative,
)
from repro.regex.parser import parse


class TestDerivative:
    def test_char_hit(self):
        assert derivative(Char("0"), "0") == EPSILON

    def test_char_miss(self):
        assert derivative(Char("0"), "1") == EMPTY

    def test_epsilon_and_empty(self):
        assert derivative(EPSILON, "0") == EMPTY
        assert derivative(EMPTY, "0") == EMPTY

    def test_word_derivative_short_circuits(self):
        assert word_derivative(Char("0"), "11") == EMPTY


class TestMatches:
    def test_intro_regex(self):
        regex = parse("10(0+1)*")
        for word in ("10", "101", "100", "1010", "1011", "1000", "1001"):
            assert matches(regex, word)
        for word in ("", "0", "1", "00", "11", "010"):
            assert not matches(regex, word)

    def test_example36_regex(self):
        # Lang((0?1)*1) ∩ ic = {11011, 1011, 011, 11, 1} per the paper.
        regex = parse("(0?1)*1")
        for word in ("11011", "1011", "011", "11", "1"):
            assert matches(regex, word)
        for word in ("", "10", "101", "0011", "110"):
            assert not matches(regex, word)

    def test_star_matches_epsilon(self):
        assert matches(parse("(01)*"), "")
        assert matches(parse("(01)*"), "0101")
        assert not matches(parse("(01)*"), "010")

    def test_question(self):
        assert matches(parse("0?1"), "1")
        assert matches(parse("0?1"), "01")
        assert not matches(parse("0?1"), "001")


class TestSatisfies:
    def test_positive_and_negative(self):
        regex = parse("0*")
        assert satisfies(regex, ["", "0", "00"], ["1", "01"])
        assert not satisfies(regex, ["1"], [])
        assert not satisfies(regex, ["0"], ["00"])


class TestAgainstNFA:
    @given(regexes(max_leaves=6), words(max_size=5))
    @settings(max_examples=150, deadline=None)
    def test_derivatives_agree_with_thompson_nfa(self, regex, word):
        automaton = nfa.from_regex(regex)
        assert matches(regex, word) == automaton.accepts(word)

    @given(regexes(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_nullable_is_epsilon_membership(self, regex):
        assert nullable(regex) == matches(regex, "")
