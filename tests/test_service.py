"""Concurrent synthesis service tests: wire forms, stores, queue,
affinity scheduling, the worker pool, and the CI smoke scenario.

The headline acceptance criterion lives in
:class:`TestPoolBitIdentity`: pool answers (regex, cost, status) are
bit-identical to solo ``Session.synthesize`` on both backends.
"""

import pickle
import time

import pytest

from repro import (
    CancellationToken,
    EngineConfig,
    Session,
    SynthesisRequest,
    Spec,
    synthesize,
)
from repro.api.registry import default_registry
from repro.regex.cost import CostFunction
from repro.service import (
    JOB_CANCELLED,
    JobFailedError,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    ResultStore,
    ServiceClient,
    StagingStore,
    StoreBackedSession,
    WireRequest,
    WorkerPool,
    staging_fingerprint,
)
from repro.service.queue import JobQueue
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe

WORDS = ("", "0", "1", "00", "10", "100", "1000", "1001", "101",
         "1010", "11", "010")

INTRO_SPEC = Spec(
    positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
    negative=["", "0", "1", "00", "11", "010"],
)

#: A deliberately long-running workload for the cancellation/robustness
#: tests: a >64-word universe with an expensive star keeps the sweep
#: busy for seconds even on the plane-resident pipeline, so there is a
#: comfortable window between the first progress event and the test's
#: intervention (cancel / kill / shutdown).
SLOW_SPEC = Spec(
    positive=["0110100101", "1010010110"],
    negative=["", "0", "1", "0011001100"],
)


def slow_request(**kwargs):
    return SynthesisRequest(
        spec=SLOW_SPEC,
        cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1)),
        max_generated=20_000_000,
        **kwargs,
    )


def partitions(count, words=WORDS):
    """``count`` *distinct* partitions of one shared word set."""
    assert count <= len(words)
    specs = []
    for k in range(count):
        positives = [w for i, w in enumerate(words) if (i + k) % count == 0]
        if not positives or len(positives) == len(words):
            positives = [words[k]]
        negatives = [w for w in words if w not in positives]
        specs.append(Spec(positives, negatives))
    assert len(set(specs)) == count
    return specs


def _key(result):
    return (result.status, result.regex_str, result.cost)


# ----------------------------------------------------------------------
# Wire forms and content addresses
# ----------------------------------------------------------------------
class TestWire:
    def test_fingerprint_is_deterministic(self):
        a = WireRequest(spec=INTRO_SPEC)
        b = WireRequest(spec=Spec(INTRO_SPEC.positive, INTRO_SPEC.negative))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_covers_the_question(self):
        base = WireRequest(spec=INTRO_SPEC)
        assert base.fingerprint() != WireRequest(
            spec=INTRO_SPEC, cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1))
        ).fingerprint()
        assert base.fingerprint() != WireRequest(
            spec=INTRO_SPEC, allowed_error=0.25).fingerprint()
        assert base.fingerprint() != WireRequest(
            spec=INTRO_SPEC, config=EngineConfig(backend="scalar")
        ).fingerprint()

    def test_alias_spellings_share_a_fingerprint(self):
        registry = default_registry()
        gpu = WireRequest.of(
            SynthesisRequest(spec=INTRO_SPEC,
                             config=EngineConfig(backend="gpu")),
            registry=registry)
        vector = WireRequest.of(
            SynthesisRequest(spec=INTRO_SPEC,
                             config=EngineConfig(backend="vector")),
            registry=registry)
        assert gpu.fingerprint() == vector.fingerprint()

    def test_staging_fingerprint_shared_by_partitions(self):
        fps = {staging_fingerprint(s) for s in partitions(4)}
        assert len(fps) == 1
        assert staging_fingerprint(Spec(["a"], ["b"])) not in fps

    def test_json_round_trip_preserves_fingerprint(self):
        wire = WireRequest(
            spec=INTRO_SPEC,
            cost_fn=CostFunction.from_tuple((2, 1, 1, 3, 1)),
            max_cost=20,
            allowed_error=0.2,
            max_generated=1000,
            config=EngineConfig(
                backend="scalar", max_cache_size=500, shard_workers=3
            ),
        )
        again = WireRequest.from_json_dict(wire.to_json_dict())
        assert again == wire
        assert again.config.shard_workers == 3
        assert again.fingerprint() == wire.fingerprint()

    def test_shard_workers_is_not_part_of_the_fingerprint(self):
        # Sharding is an execution knob with bit-identical answers, so
        # submissions differing only in fan-out must dedupe onto one
        # job/result — and stores written before the knob existed must
        # keep answering their requests.
        serial = WireRequest(spec=INTRO_SPEC)
        sharded = WireRequest(spec=INTRO_SPEC,
                              config=EngineConfig(shard_workers=4))
        assert serial.fingerprint() == sharded.fingerprint()
        assert sharded.to_json_dict()["config"]["shard_workers"] == 4

    def test_hooks_are_dropped_on_the_wire(self):
        request = SynthesisRequest(
            spec=INTRO_SPEC, on_progress=lambda e: None,
            cancel=lambda: False)
        wire = WireRequest.of(request)
        pickle.loads(pickle.dumps(wire))  # picklable without the hooks
        assert wire.to_request().on_progress is None

    def test_results_pickle(self):
        result = synthesize(INTRO_SPEC)
        again = pickle.loads(pickle.dumps(result))
        assert _key(again) == _key(result)
        assert again.spec == result.spec


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
class TestStores:
    def test_staging_store_round_trip(self, tmp_path):
        store = StagingStore(tmp_path / "staging")
        universe = Universe(INTRO_SPEC.all_words,
                            alphabet=INTRO_SPEC.alphabet)
        guide = GuideTable(universe)
        key = staging_fingerprint(INTRO_SPEC)
        store.save_staging(key, universe, guide)
        assert key in store
        loaded_universe, loaded_guide = store.load_staging(key)
        assert loaded_universe.words == universe.words
        assert loaded_guide.flat.n_splits == guide.flat.n_splits
        assert store.load_staging("0" * 64) is None

    def test_result_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        wire = WireRequest(spec=INTRO_SPEC)
        result = synthesize(INTRO_SPEC)
        store.save_result(wire.fingerprint(), result)
        again = store.load_result(wire.fingerprint())
        assert _key(again) == _key(result)
        assert store.load_result("absent") is None

    def test_store_backed_session_loads_instead_of_building(self, tmp_path):
        store = StagingStore(tmp_path / "staging")
        first = StoreBackedSession(staging_store=store)
        assert first.synthesize(INTRO_SPEC).found
        assert first.store_saves == 1
        assert first.store_loads == 0

        second = StoreBackedSession(staging_store=store)
        result = second.synthesize(INTRO_SPEC)
        assert _key(result) == _key(synthesize(INTRO_SPEC))
        assert second.store_loads == 1
        assert second.stats.staging_builds == 0


# ----------------------------------------------------------------------
# Queue: priorities, dedup, cancellation (no processes involved)
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue()
        low = queue.submit(WireRequest(spec=partitions(4)[0]),
                           priority=PRIORITY_LOW)
        first = queue.submit(WireRequest(spec=partitions(4)[1]))
        second = queue.submit(WireRequest(spec=partitions(4)[2]))
        high = queue.submit(WireRequest(spec=partitions(4)[3]),
                            priority=PRIORITY_HIGH)
        order = [job.job_id for job in queue.pending_in_order()]
        assert order == [high.job_id, first.job_id, second.job_id,
                         low.job_id]

    def test_duplicate_submissions_join_one_job(self):
        queue = JobQueue()
        a = queue.submit(WireRequest(spec=INTRO_SPEC))
        b = queue.submit(WireRequest(spec=INTRO_SPEC))
        assert not a.deduplicated and b.deduplicated
        assert a.job_id == b.job_id
        assert len(queue) == 1
        assert queue.deduplicated == 1

    def test_high_priority_duplicate_escalates_the_queued_job(self):
        queue = JobQueue()
        specs = partitions(2)
        low = queue.submit(WireRequest(spec=specs[0]),
                           priority=PRIORITY_LOW)
        normal = queue.submit(WireRequest(spec=specs[1]))
        joined = queue.submit(WireRequest(spec=specs[0]),
                              priority=PRIORITY_HIGH)
        assert joined.deduplicated and joined.job_id == low.job_id
        order = [job.job_id for job in queue.pending_in_order()]
        # The join raised the shared job to the front of the queue.
        assert order == [low.job_id, normal.job_id]

    def test_low_priority_duplicate_does_not_demote(self):
        queue = JobQueue()
        specs = partitions(2)
        high = queue.submit(WireRequest(spec=specs[0]),
                            priority=PRIORITY_HIGH)
        normal = queue.submit(WireRequest(spec=specs[1]))
        queue.submit(WireRequest(spec=specs[0]), priority=PRIORITY_LOW)
        order = [job.job_id for job in queue.pending_in_order()]
        assert order == [high.job_id, normal.job_id]

    def test_stored_lookup_still_emits_the_final_progress_event(self):
        stored = synthesize(INTRO_SPEC)
        events = []
        queue = JobQueue()
        handle = queue.submit(WireRequest(spec=INTRO_SPEC),
                              on_progress=events.append,
                              stored_lookup=lambda fp: stored)
        assert handle.from_store
        assert len(events) == 1 and events[0].done
        assert events[0].incumbent is stored

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue()
        handle = queue.submit(WireRequest(spec=INTRO_SPEC))
        assert handle.cancel()
        assert handle.state == JOB_CANCELLED
        result = handle.result(timeout=0)
        assert result.status == "cancelled"
        assert len(queue) == 0
        assert not handle.cancel()  # already finished

    def test_stored_lookup_fast_path(self, tmp_path):
        stored = synthesize(INTRO_SPEC)
        queue = JobQueue()
        handle = queue.submit(WireRequest(spec=INTRO_SPEC),
                              stored_lookup=lambda fp: stored)
        assert handle.from_store and handle.done
        assert _key(handle.result(timeout=0)) == _key(stored)
        assert len(queue) == 0


# ----------------------------------------------------------------------
# The affinity scheduler (pure planning, deterministic)
# ----------------------------------------------------------------------
class _FakeJob:
    def __init__(self, staging_fp, slots=1):
        self.staging_fp = staging_fp
        self.slots = slots


class TestAffinityScheduling:
    def test_prefers_the_warm_worker(self):
        plan = WorkerPool.plan_assignments(
            [_FakeJob("u1")], worker_loads=[1, 0],
            worker_warm=[["u1"], []], depth=2)
        assert plan == [(0, 0, "affinity")]

    def test_steals_when_every_warm_worker_is_saturated(self):
        plan = WorkerPool.plan_assignments(
            [_FakeJob("u1")], worker_loads=[2, 0],
            worker_warm=[["u1"], []], depth=2)
        assert plan == [(0, 1, "steal")]

    def test_cold_jobs_go_to_the_least_loaded_worker(self):
        plan = WorkerPool.plan_assignments(
            [_FakeJob("u9")], worker_loads=[1, 0],
            worker_warm=[["u1"], ["u2"]], depth=2)
        assert plan == [(0, 1, "cold")]

    def test_assignments_consume_capacity_in_queue_order(self):
        jobs = [_FakeJob("u1"), _FakeJob("u1"), _FakeJob("u1"),
                _FakeJob("u2")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[0, 0], worker_warm=[["u1"], []], depth=2)
        # Two u1 jobs fill the warm worker, the third spills (steal),
        # and the u2 job lands cold on the remaining capacity.
        assert plan == [(0, 0, "affinity"), (1, 0, "affinity"),
                        (2, 1, "steal"), (3, 1, "cold")]

    def test_planning_stops_when_all_workers_are_full(self):
        jobs = [_FakeJob("u1"), _FakeJob("u2"), _FakeJob("u3")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[1, 1], worker_warm=[[], []], depth=1)
        assert plan == []

    def test_first_assignment_warms_the_worker_for_the_second(self):
        jobs = [_FakeJob("u1"), _FakeJob("u1")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[0, 0], worker_warm=[[], []], depth=2)
        assert plan == [(0, 0, "cold"), (1, 0, "affinity")]

    def test_sharded_job_claims_its_shard_slots(self):
        # A shard_workers=2 job occupies 2 of the worker's depth-2
        # slots, so the following single-slot job must go elsewhere.
        jobs = [_FakeJob("u1", slots=2), _FakeJob("u1")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[0, 0], worker_warm=[["u1"], []], depth=2)
        assert plan == [(0, 0, "affinity"), (1, 1, "steal")]

    def test_wide_job_waits_for_an_idle_worker(self):
        # A job wider than the depth is only admitted onto an idle
        # worker; while it waits it parks the least-loaded worker
        # (worker 0 here), so the narrow job behind it backfills the
        # *other* worker and the parked one drains toward idle.
        jobs = [_FakeJob("u1", slots=5), _FakeJob("u2")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[1, 1], worker_warm=[[], []], depth=2)
        assert plan == [(1, 1, "cold")]
        plan = WorkerPool.plan_assignments(
            jobs, worker_loads=[0, 1], worker_warm=[[], []], depth=2)
        assert plan == [(0, 0, "cold"), (1, 1, "cold")]

    def test_parked_wide_job_cannot_be_starved_by_backfill(self):
        # Regression: sustained narrow traffic must not starve a wide
        # head-of-line job.  The wide job parks worker 0; narrow jobs
        # may only backfill worker 1, so worker 0's load can only
        # drain — simulate the drain and the wide job places.
        wide = _FakeJob("u1", slots=2)
        narrow = [_FakeJob("u2"), _FakeJob("u3"), _FakeJob("u4")]
        plan = WorkerPool.plan_assignments(
            [wide] + narrow, worker_loads=[1, 1],
            worker_warm=[[], []], depth=2)
        # Worker 0 is parked: only one narrow job fits (worker 1).
        assert plan == [(1, 1, "cold")]
        # Worker 0's job completes -> idle -> the wide job runs first.
        plan = WorkerPool.plan_assignments(
            [wide] + narrow, worker_loads=[0, 2],
            worker_warm=[[], []], depth=2)
        assert plan[0] == (0, 0, "cold")


# ----------------------------------------------------------------------
# Pool integration: the acceptance criterion
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["scalar", "vector"])
class TestPoolBitIdentity:
    def test_pool_matches_solo_session(self, backend):
        specs = partitions(5)
        requests = [SynthesisRequest(spec=s) for s in specs]
        requests.append(SynthesisRequest(spec=specs[0], allowed_error=0.25))
        requests.append(SynthesisRequest(
            spec=specs[1], cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1)),
            max_generated=200_000))

        solo = Session(EngineConfig(backend=backend))
        expected = [solo.synthesize(r) for r in requests]

        with ServiceClient(workers=2,
                           config=EngineConfig(backend=backend)) as client:
            results = client.synthesize_many(requests)
        assert [_key(r) for r in results] == [_key(r) for r in expected]
        assert all(r.backend == backend for r in results)


class TestPoolBehaviour:
    def test_progress_events_cross_the_process_boundary(self):
        events = []
        with ServiceClient(workers=1) as client:
            handle = client.submit(INTRO_SPEC, on_progress=events.append)
            result = handle.result(timeout=120)
        assert result.found
        assert events, "expected forwarded progress events"
        streamed = [e for e in events if not e.done]
        assert streamed, "expected at least one per-level event"
        assert [e.cost for e in streamed] == sorted(e.cost for e in streamed)
        # The engine-side monotonic clock travelled with the events.
        elapsed = [e.elapsed_s for e in streamed]
        assert all(v >= 0.0 for v in elapsed)
        assert elapsed == sorted(elapsed)
        final = events[-1]
        assert final.done
        assert final.incumbent is result

    def test_in_flight_dedup_and_priorities(self):
        specs = partitions(4)
        done_order = []

        def tracker(tag):
            def on_event(event):
                if event.done:
                    done_order.append(tag)
            return on_event

        with ServiceClient(workers=1, per_worker_depth=1) as client:
            blocker = client.submit(specs[0], on_progress=tracker("blocker"))
            low = client.submit(specs[1], priority=PRIORITY_LOW,
                                on_progress=tracker("low"))
            high = client.submit(specs[2], priority=PRIORITY_HIGH,
                                 on_progress=tracker("high"))
            dup_a = client.submit(specs[3])
            dup_b = client.submit(specs[3])
            results = [h.result(timeout=120)
                       for h in (blocker, low, high, dup_a, dup_b)]
            stats = client.stats
        assert all(r.found for r in results)
        assert dup_b.deduplicated
        assert dup_a.job_id == dup_b.job_id
        assert _key(results[3]) == _key(results[4])
        assert stats["deduplicated"] == 1
        # With one worker at depth 1, the high-priority job must finish
        # before the low-priority one submitted earlier.
        assert done_order.index("high") < done_order.index("low")

    def test_cancel_queued_job(self):
        specs = partitions(3)
        with ServiceClient(workers=1, per_worker_depth=1) as client:
            blocker = client.submit(specs[0])
            victim = client.submit(specs[1])
            assert victim.cancel()
            cancelled = victim.result(timeout=120)
            assert blocker.result(timeout=120).found
            stats = client.stats
        assert cancelled.status == "cancelled"
        assert stats["cancelled"] == 1

    def test_cancel_running_job_via_watchdog(self):
        # A deliberately long search (expensive-star cost function and a
        # large candidate budget); the budget bounds the damage if
        # cancellation were broken, so the test fails instead of hanging.
        slow = slow_request()
        events = []
        with ServiceClient(workers=1) as client:
            handle = client.submit(slow, on_progress=events.append)
            deadline = time.monotonic() + 60
            while not events and time.monotonic() < deadline:
                time.sleep(0.005)
            assert events, "job never reported progress"
            assert handle.cancel()
            result = handle.result(timeout=120)
        assert result.status == "cancelled"

    def test_worker_crash_fails_only_that_job(self):
        # allowed_error=1.5 passes the wire layer (it is just JSON) but
        # makes the worker's engine constructor raise — a stand-in for
        # any worker-side failure.
        bad = WireRequest(spec=INTRO_SPEC, allowed_error=1.5)
        with ServiceClient(workers=1) as client:
            broken = client.submit(bad)
            ok = client.submit(partitions(2)[0])
            assert ok.result(timeout=120).found
            with pytest.raises(JobFailedError):
                broken.result(timeout=120)
            assert client.stats["failed"] == 1


    def test_killed_worker_fails_its_job_instead_of_hanging(self):
        # With retries exhausted (max_attempts=1) a killed worker's job
        # must fail promptly rather than hang its handle; the retry path
        # itself is covered in tests/test_recovery.py.
        slow = slow_request()
        events = []
        with ServiceClient(workers=1, retry_max_attempts=1) as client:
            handle = client.submit(slow, on_progress=events.append)
            deadline = time.monotonic() + 60
            while not events and time.monotonic() < deadline:
                time.sleep(0.005)
            assert events, "job never reported progress"
            client.pool._workers[0].process.kill()
            with pytest.raises(JobFailedError, match="died"):
                handle.result(timeout=60)
            assert client.stats["failed"] == 1
            assert client.stats["quarantined"] == 1


    def test_request_level_hooks_work_through_the_pool(self):
        # The drop-in promise: a SynthesisRequest's own cancel token
        # and on_progress keep working when served by the pool.
        token = CancellationToken()
        events = []
        slow = slow_request(cancel=token, on_progress=events.append)
        with ServiceClient(workers=1) as client:
            handle = client.submit(slow)
            deadline = time.monotonic() + 60
            while not events and time.monotonic() < deadline:
                time.sleep(0.005)
            assert events, "request's own on_progress never fired"
            token.cancel()
            result = handle.result(timeout=120)
        assert result.status == "cancelled"

    def test_shutdown_without_wait_never_leaves_handles_hanging(self):
        specs = partitions(2)
        pool = WorkerPool(workers=1, per_worker_depth=1)
        pool.start()
        handles = [pool.submit(spec) for spec in specs]
        pool.shutdown(wait=False)
        # Every handle must resolve (answered or failed) — never hang.
        for handle in handles:
            try:
                handle.result(timeout=30)
            except JobFailedError:
                pass
            assert handle.done

    def test_shutdown_returns_even_with_a_dead_worker_mid_job(self):
        import threading

        slow = slow_request()
        events = []
        client = ServiceClient(workers=1).start()
        client.submit(slow, on_progress=events.append)
        deadline = time.monotonic() + 60
        while not events and time.monotonic() < deadline:
            time.sleep(0.005)
        assert events, "job never reported progress"
        client.pool._workers[0].process.kill()
        # shutdown(wait=True) must drain the orphaned job via the
        # reaper instead of spinning on it forever.
        closer = threading.Thread(target=client.close)
        closer.start()
        closer.join(timeout=60)
        assert not closer.is_alive(), "shutdown hung on a dead worker"

    def test_pool_restarts_after_shutdown(self):
        spec = partitions(2)[0]
        pool = WorkerPool(workers=1)
        with pool:
            first = pool.submit(spec).result(timeout=120)
        with pytest.raises(RuntimeError, match="not running"):
            pool.submit(spec)
        # A stopped pool restarts cleanly with fresh workers.
        with pool:
            second = pool.submit(spec).result(timeout=120)
        assert _key(first) == _key(second)


class TestWarmStartAcrossRestarts:
    def test_second_pool_loads_persisted_staging(self, tmp_path):
        specs = partitions(3)
        expected = [synthesize(s) for s in specs]
        store = tmp_path / "service-state"

        with ServiceClient(workers=2, store_dir=store) as client:
            cold = client.synthesize_many(specs)
            cold_stats = client.worker_stats()
        assert [_key(r) for r in cold] == [_key(r) for r in expected]
        assert sum(w["session"].get("staging_builds", 0)
                   for w in cold_stats) >= 1

        with ServiceClient(workers=2, store_dir=store) as client:
            warm = client.synthesize_many(specs)
            warm_stats = client.worker_stats()
        assert [_key(r) for r in warm] == [_key(r) for r in expected]
        assert sum(w["session"].get("staging_builds", 0)
                   for w in warm_stats) == 0
        assert sum(w["session"].get("store_loads", 0)
                   for w in warm_stats) >= 1

    def test_reuse_results_answers_from_the_store(self, tmp_path):
        spec = partitions(2)[0]
        store = tmp_path / "service-state"
        with ServiceClient(workers=1, store_dir=store) as client:
            first = client.synthesize(spec)
        with ServiceClient(workers=1, store_dir=store,
                           reuse_results=True) as client:
            handle = client.submit(spec)
            assert handle.from_store and handle.done
            assert _key(handle.result(timeout=0)) == _key(first)
            assert client.stats["result_hits"] == 1


# ----------------------------------------------------------------------
# The CI smoke scenario (mirrors the workflow's service job)
# ----------------------------------------------------------------------
class TestServiceSmoke:
    def test_five_specs_with_duplicate_and_cancellation(self):
        """Start a pool, submit 5 specs — one a duplicate, one cancelled
        — and assert dedupe + cancellation + correct answers."""
        specs = partitions(4)
        with ServiceClient(workers=2, per_worker_depth=1) as client:
            a = client.submit(specs[0])
            b = client.submit(specs[1])
            duplicate = client.submit(specs[0])
            doomed = client.submit(specs[2])
            doomed.cancel()
            c = client.submit(specs[3])
            results = {
                "a": a.result(timeout=120),
                "b": b.result(timeout=120),
                "dup": duplicate.result(timeout=120),
                "doomed": doomed.result(timeout=120),
                "c": c.result(timeout=120),
            }
            stats = client.stats
        assert duplicate.deduplicated
        assert stats["deduplicated"] == 1
        assert stats["cancelled"] == 1
        assert results["doomed"].status == "cancelled"
        assert _key(results["a"]) == _key(results["dup"])
        for tag in ("a", "b", "c"):
            assert _key(results[tag]) == _key(
                synthesize(results[tag].spec))
