"""CLI tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_args(self):
        args = build_parser().parse_args(
            ["synth", "--pos", "0", "--neg", "1", "--backend", "cpu"]
        )
        assert args.pos == ["0"]
        assert args.backend == "cpu"


class TestSynthCommand:
    def test_success_exit_code(self, capsys):
        code = main(["synth", "--pos", "0", "00", "--neg", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status     : success" in out
        assert "regex" in out

    def test_not_found_exit_code(self, capsys):
        code = main(["synth", "--pos", "0101", "--neg", "01",
                     "--max-generated", "5"])
        assert code == 1

    def test_error_flag(self, capsys):
        code = main(["synth", "--pos", "0", "1", "--neg", "00",
                     "--error", "0.4"])
        assert code == 0

    def test_cost_flag(self, capsys):
        code = main(["synth", "--pos", "0", "--neg", "1",
                     "--cost", "(5,5,5,5,5)"])
        assert code == 0
        assert "cost       : 5" in capsys.readouterr().out


class TestCostParsing:
    @pytest.mark.parametrize("bad", ["", "abc", "1,2", "1,2,3,4,5,6",
                                     "1,,2,3,4", "(1,2,x,4,5)"])
    def test_malformed_cost_is_a_clean_usage_error(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--pos", "0", "--neg", "1", "--cost", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cost" in err
        assert "Traceback" not in err

    def test_non_positive_component_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--pos", "0", "--neg", "1", "--cost", "1,0,1,1,1"])
        assert excinfo.value.code == 2

    def test_parenthesised_cost_still_accepted(self, capsys):
        assert main(["synth", "--pos", "0", "--neg", "1",
                     "--cost", "(5, 5, 5, 5, 5)"]) == 0


class TestSpecFile:
    def test_round_trips_spec_json(self, tmp_path, capsys):
        from repro.spec import Spec

        spec = Spec(["10", "100"], ["", "0", "1"])
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert main(["synth", "--spec-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "status     : success" in out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--spec-file", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_invalid_json_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--spec-file", str(path)])
        assert excinfo.value.code == 2
        assert "invalid spec JSON" in capsys.readouterr().err

    def test_conflicts_with_pos_neg(self, tmp_path, capsys):
        from repro.spec import Spec

        path = tmp_path / "spec.json"
        path.write_text(Spec(["0"], ["1"]).to_json(), encoding="utf-8")
        code = main(["synth", "--spec-file", str(path), "--pos", "0"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestProgressAndLimits:
    def test_progress_streams_level_lines(self, capsys):
        assert main(["synth", "--pos", "10", "100", "--neg", "", "0",
                     "--progress"]) == 0
        out = capsys.readouterr().out
        assert "level" in out

    def test_time_limit_zero_reports_cancelled(self, capsys):
        code = main(["synth", "--pos", "0101", "--neg", "01",
                     "--time-limit", "0"])
        assert code == 1
        assert "cancelled" in capsys.readouterr().out


class TestSuiteCommand:
    def test_prints_benchmarks(self, capsys):
        code = main(["suite", "--type", "2", "--count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("T2-") == 3


class TestErrorTableCommand:
    def test_small_sweep(self, capsys):
        code = main(["error-table", "--errors", "50", "45"])
        assert code == 0
        out = capsys.readouterr().out
        assert "∅" in out
