"""CLI tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_args(self):
        args = build_parser().parse_args(
            ["synth", "--pos", "0", "--neg", "1", "--backend", "cpu"]
        )
        assert args.pos == ["0"]
        assert args.backend == "cpu"


class TestSynthCommand:
    def test_success_exit_code(self, capsys):
        code = main(["synth", "--pos", "0", "00", "--neg", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status     : success" in out
        assert "regex" in out

    def test_not_found_exit_code(self, capsys):
        code = main(["synth", "--pos", "0101", "--neg", "01",
                     "--max-generated", "5"])
        assert code == 1

    def test_error_flag(self, capsys):
        code = main(["synth", "--pos", "0", "1", "--neg", "00",
                     "--error", "0.4"])
        assert code == 0

    def test_cost_flag(self, capsys):
        code = main(["synth", "--pos", "0", "--neg", "1",
                     "--cost", "(5,5,5,5,5)"])
        assert code == 0
        assert "cost       : 5" in capsys.readouterr().out


class TestSuiteCommand:
    def test_prints_benchmarks(self, capsys):
        code = main(["suite", "--type", "2", "--count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("T2-") == 3


class TestErrorTableCommand:
    def test_small_sweep(self, capsys):
        code = main(["error-table", "--errors", "50", "45"])
        assert code == 0
        out = capsys.readouterr().out
        assert "∅" in out
