"""CLI tests (fast subcommands only)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_args(self):
        args = build_parser().parse_args(
            ["synth", "--pos", "0", "--neg", "1", "--backend", "cpu"]
        )
        assert args.pos == ["0"]
        assert args.backend == "cpu"


class TestSynthCommand:
    def test_success_exit_code(self, capsys):
        code = main(["synth", "--pos", "0", "00", "--neg", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status     : success" in out
        assert "regex" in out

    def test_not_found_exit_code(self, capsys):
        code = main(["synth", "--pos", "0101", "--neg", "01",
                     "--max-generated", "5"])
        assert code == 1

    def test_error_flag(self, capsys):
        code = main(["synth", "--pos", "0", "1", "--neg", "00",
                     "--error", "0.4"])
        assert code == 0

    def test_cost_flag(self, capsys):
        code = main(["synth", "--pos", "0", "--neg", "1",
                     "--cost", "(5,5,5,5,5)"])
        assert code == 0
        assert "cost       : 5" in capsys.readouterr().out


class TestCostParsing:
    @pytest.mark.parametrize("bad", ["", "abc", "1,2", "1,2,3,4,5,6",
                                     "1,,2,3,4", "(1,2,x,4,5)"])
    def test_malformed_cost_is_a_clean_usage_error(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--pos", "0", "--neg", "1", "--cost", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cost" in err
        assert "Traceback" not in err

    def test_non_positive_component_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--pos", "0", "--neg", "1", "--cost", "1,0,1,1,1"])
        assert excinfo.value.code == 2

    def test_parenthesised_cost_still_accepted(self, capsys):
        assert main(["synth", "--pos", "0", "--neg", "1",
                     "--cost", "(5, 5, 5, 5, 5)"]) == 0


class TestSpecFile:
    def test_round_trips_spec_json(self, tmp_path, capsys):
        from repro.spec import Spec

        spec = Spec(["10", "100"], ["", "0", "1"])
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert main(["synth", "--spec-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "status     : success" in out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--spec-file", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_invalid_json_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "--spec-file", str(path)])
        assert excinfo.value.code == 2
        assert "invalid spec JSON" in capsys.readouterr().err

    def test_conflicts_with_pos_neg(self, tmp_path, capsys):
        from repro.spec import Spec

        path = tmp_path / "spec.json"
        path.write_text(Spec(["0"], ["1"]).to_json(), encoding="utf-8")
        code = main(["synth", "--spec-file", str(path), "--pos", "0"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestProgressAndLimits:
    def test_progress_streams_level_lines(self, capsys):
        assert main(["synth", "--pos", "10", "100", "--neg", "", "0",
                     "--progress"]) == 0
        out = capsys.readouterr().out
        assert "level" in out

    def test_time_limit_zero_reports_cancelled(self, capsys):
        code = main(["synth", "--pos", "0101", "--neg", "01",
                     "--time-limit", "0"])
        assert code == 1
        assert "cancelled" in capsys.readouterr().out


class TestSuiteCommand:
    def test_prints_benchmarks(self, capsys):
        code = main(["suite", "--type", "2", "--count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("T2-") == 3


class TestErrorTableCommand:
    def test_small_sweep(self, capsys):
        code = main(["error-table", "--errors", "50", "45"])
        assert code == 0
        out = capsys.readouterr().out
        assert "∅" in out


class TestBackendsCommand:
    def test_lists_engines_aliases_and_capabilities(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "scalar" in out and "vector" in out
        assert "cpu" in out and "gpu" in out
        assert "batch-serving" in out and "vectorised" in out


class TestServeAndSubmit:
    def _job_line(self, positives, negatives, **extra):
        import json

        payload = {"spec": {"positive": positives, "negative": negatives}}
        payload.update(extra)
        return json.dumps(payload)

    def test_serve_batch_mode_with_dedupe(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            "\n".join([
                self._job_line(["0", "00"], ["1"]),
                self._job_line(["10", "101"], ["", "0"], priority=0),
                self._job_line(["0", "00"], ["1"]),  # duplicate
            ]) + "\n",
            encoding="utf-8",
        )
        store = tmp_path / "store"
        code = main(["serve", "--store", str(store), "--workers", "2",
                     "--jobs", str(jobs)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 served" in out
        assert "1 deduplicated" in out
        answers = sorted((store / "outbox").glob("*.json"))
        assert len(answers) == 2
        statuses = {json.loads(p.read_text())["status"] for p in answers}
        assert statuses == {"success"}
        # The persistent caches were populated for warm restarts.
        assert list((store / "staging").glob("*.pkl"))
        assert list((store / "results").glob("*.pkl"))

    def test_serve_requires_jobs_or_watch(self, tmp_path, capsys):
        code = main(["serve", "--store", str(tmp_path / "store")])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_submit_writes_content_addressed_inbox_file(self, tmp_path,
                                                        capsys):
        import json

        store = tmp_path / "store"
        code = main(["submit", "--store", str(store),
                     "--pos", "0", "00", "--neg", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "job id" in out
        inbox = list((store / "inbox").glob("*.json"))
        assert len(inbox) == 1
        payload = json.loads(inbox[0].read_text(encoding="utf-8"))
        assert payload["spec"]["positive"] == ["0", "00"]
        # The file name is the request fingerprint (content address).
        from repro.service import WireRequest

        payload.pop("priority")
        assert inbox[0].stem == WireRequest.from_json_dict(
            payload).fingerprint()

    def test_submit_cancel_writes_marker(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["submit", "--store", str(store),
                     "--cancel", "deadbeef"]) == 0
        assert (store / "inbox" / "deadbeef.cancel").exists()

    def test_submit_then_serve_round_trip(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["submit", "--store", str(store),
                     "--pos", "10", "101", "--neg", "", "0"]) == 0
        job_file = next((store / "inbox").glob("*.json"))
        # Serve the inbox in watch mode just long enough to drain it.
        code = main(["serve", "--store", str(store), "--workers", "1",
                     "--watch", "--idle-timeout", "0.5",
                     "--poll-interval", "0.02"])
        assert code == 0
        assert not job_file.exists()
        answer = (store / "outbox" / job_file.name)
        assert answer.exists()
        # A re-submit with --wait finds the answer already there.
        code = main(["submit", "--store", str(store),
                     "--pos", "10", "101", "--neg", "", "0",
                     "--wait", "--timeout", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status     : success" in out

    def test_serve_batch_skips_malformed_jsonl_lines(self, tmp_path,
                                                     capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            "\n".join([
                "{not valid json",
                '{"no_spec_key": true}',
                self._job_line(["0", "00"], ["1"]),
            ]) + "\n",
            encoding="utf-8",
        )
        store = tmp_path / "store"
        code = main(["serve", "--store", str(store), "--workers", "1",
                     "--jobs", str(jobs)])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 served" in captured.out
        assert "skipping" in captured.err
        assert "line 1" in captured.err and "line 2" in captured.err

    def test_cancel_marker_before_job_file_is_not_lost(self, tmp_path):
        import json

        from repro import SynthesisRequest, Spec
        from repro.regex.cost import CostFunction
        from repro.service import WireRequest

        store = tmp_path / "store"
        (store / "inbox").mkdir(parents=True)
        (store / "outbox").mkdir(parents=True)
        # A deliberately slow request, so cancellation (not completion)
        # decides the outcome; the budget bounds the damage either way.
        wire = WireRequest.of(SynthesisRequest(
            spec=Spec(["10", "101", "100", "1010", "1011"],
                      ["", "0", "1", "00", "11"]),
            cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1)),
            max_generated=20_000_000,
        ))
        fingerprint = wire.fingerprint()
        # The cancel marker lands BEFORE the job file exists.
        (store / "inbox" / ("%s.cancel" % fingerprint)).write_text("")
        (store / "inbox" / ("%s.json" % fingerprint)).write_text(
            json.dumps(wire.to_json_dict()), encoding="utf-8")
        code = main(["serve", "--store", str(store), "--workers", "1",
                     "--watch", "--idle-timeout", "1",
                     "--poll-interval", "0.02"])
        assert code == 0
        answer = json.loads(
            (store / "outbox" / ("%s.json" % fingerprint)).read_text())
        assert answer["status"] == "cancelled"
        assert not (store / "inbox" / ("%s.cancel" % fingerprint)).exists()

    def test_watch_serves_job_files_not_named_by_fingerprint(self,
                                                             tmp_path):
        # The protocol names files by fingerprint, but a hand-dropped
        # file under any name must be served once (not re-submitted
        # every poll tick) and consumed on completion.
        import json

        store = tmp_path / "store"
        (store / "inbox").mkdir(parents=True)
        job_path = store / "inbox" / "myjob.json"
        job_path.write_text(self._job_line(["0", "00"], ["1"]),
                            encoding="utf-8")
        code = main(["serve", "--store", str(store), "--workers", "1",
                     "--watch", "--idle-timeout", "0.5",
                     "--poll-interval", "0.02"])
        assert code == 0
        assert not job_path.exists()
        answers = list((store / "outbox").glob("*.json"))
        assert len(answers) == 1
        payload = json.loads(answers[0].read_text(encoding="utf-8"))
        assert payload["status"] == "success"
        # The answer is filed under the computed content fingerprint.
        assert answers[0].stem == payload["fingerprint"]


class TestByteBudgetParsing:
    def test_suffixes(self):
        from repro.cli import _parse_bytes

        assert _parse_bytes("500000") == 500_000
        assert _parse_bytes("64K") == 64 * 1024
        assert _parse_bytes("2m") == 2 * 1024 ** 2
        assert _parse_bytes("1G") == 1024 ** 3

    @pytest.mark.parametrize("bad", ["", "lots", "1.5M", "-3"])
    def test_malformed_is_a_usage_error(self, bad):
        import argparse

        from repro.cli import _parse_bytes

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_bytes(bad)


class TestCheckpointBudgetFlag:
    def test_serve_prunes_checkpoints_at_startup(self, tmp_path, capsys):
        from repro.service import CheckpointStore

        store = tmp_path / "store"
        checkpoints = store / "checkpoints"
        checkpoints.mkdir(parents=True)
        cp = CheckpointStore(checkpoints)
        import os

        for index in range(3):
            key = "key%d" % index
            cp._journal_path(key).write_bytes(b"x" * 1000)
            cp._manifest_path(key).write_text("{}", encoding="utf-8")
            os.utime(cp._journal_path(key), (1_000 + index, 1_000 + index))
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text("", encoding="utf-8")
        code = main(["serve", "--store", str(store), "--workers", "1",
                     "--jobs", str(jobs), "--checkpoint-budget", "2K"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint budget: evicted 1 key(s)" in out
        assert cp.keys() == ["key1", "key2"]  # oldest evicted


class TestServerAndClientCommands:
    @pytest.fixture()
    def running_server(self, tmp_path):
        from repro.server import SynthesisServer

        with SynthesisServer(
            store_dir=str(tmp_path / "store"),
            interactive_workers=1,
            batch_workers=1,
        ) as server:
            yield server

    def test_submit_requires_store_or_server(self, capsys):
        code = main(["submit", "--pos", "0", "--neg", "1"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_submit_over_http_waits_with_backoff(self, running_server,
                                                 capsys):
        code = main(["submit", "--server", running_server.address,
                     "--pos", "0", "00", "--neg", "1", "--wait",
                     "--timeout", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "job id" in out
        assert "status     : success" in out

    def test_client_submit_status_events_health_metrics(self,
                                                        running_server,
                                                        capsys):
        address = running_server.address
        assert main(["client", "submit", "--server", address,
                     "--pos", "10", "100", "--neg", "", "0",
                     "--wait", "--timeout", "120"]) == 0
        out = capsys.readouterr().out
        job_id = next(line.split(":")[1].strip()
                      for line in out.splitlines()
                      if line.startswith("job id"))
        assert main(["client", "status", job_id, "--server", address]) == 0
        assert '"state": "done"' in capsys.readouterr().out
        assert main(["client", "events", job_id, "--server", address]) == 0
        assert "done: elapsed_s=" in capsys.readouterr().out
        assert main(["client", "health", "--server", address]) == 0
        assert '"status": "ok"' in capsys.readouterr().out
        assert main(["client", "metrics", "--server", address]) == 0
        assert "repro_queue_depth" in capsys.readouterr().out

    def test_client_cancel_of_finished_job_is_moot(self, running_server,
                                                   capsys):
        address = running_server.address
        assert main(["client", "submit", "--server", address,
                     "--pos", "0", "--neg", "1",
                     "--wait", "--timeout", "120"]) == 0
        out = capsys.readouterr().out
        job_id = next(line.split(":")[1].strip()
                      for line in out.splitlines()
                      if line.startswith("job id"))
        assert main(["client", "cancel", job_id, "--server", address]) == 0
        assert '"cancelled": false' in capsys.readouterr().out

    def test_client_status_needs_a_job_id(self, capsys):
        code = main(["client", "status", "--server", "http://127.0.0.1:1"])
        assert code == 2
        assert "needs a job id" in capsys.readouterr().err

    def test_server_refused_connection_is_a_clean_error(self, capsys):
        code = main(["client", "health",
                     "--server", "http://127.0.0.1:9"])
        assert code == 3
        assert "repro client" in capsys.readouterr().err


class TestReportCommand:
    def write_artifact(self, tmp_path):
        payload = {
            "benchmark": "widget throughput",
            "scale": "quick",
            "speedup": 2.5,
            "lanes": {"batch": 1},
            "results": [
                {"name": "a", "seconds": 0.5},
                {"name": "b", "seconds": 1.25, "extra_col": 7},
            ],
        }
        (tmp_path / "BENCH_widget.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )

    def test_renders_markdown_tables(self, tmp_path, capsys):
        self.write_artifact(tmp_path)
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark report" in out
        assert "## BENCH_widget.json" in out
        assert "| benchmark | widget throughput |" in out
        assert "| lanes.batch | 1 |" in out
        # The records table unions the rows' columns.
        assert "| name | seconds | extra_col |" in out

    def test_out_writes_the_file(self, tmp_path, capsys):
        self.write_artifact(tmp_path)
        report = tmp_path / "report.md"
        assert main(["report", "--dir", str(tmp_path),
                     "--out", str(report)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "widget throughput" in report.read_text(encoding="utf-8")

    def test_empty_directory_is_not_an_error(self, tmp_path, capsys):
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_*.json artifacts" in capsys.readouterr().out

    def test_unreadable_artifact_is_reported_inline(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{nope", encoding="utf-8")
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "unreadable" in capsys.readouterr().out


class TestTraceCommand:
    def test_server_refused_connection_is_a_clean_error(self, capsys):
        code = main(["trace", "deadbeef",
                     "--server", "http://127.0.0.1:9"])
        assert code == 3
        assert "repro trace" in capsys.readouterr().err
