"""Reporting/rendering tests."""

from repro.eval.reporting import ascii_series_plot, render_markdown, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [["a", 1], ["long-name", 2.5]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-+-" in lines[2]
        assert "2.5000" in text

    def test_none_renders_as_na(self):
        text = render_table(["x"], [[None]])
        assert "N/A" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown(["h1", "h2"], [["x", 1]], title="T")
        lines = text.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| h1 ")
        assert lines[3].startswith("|---")
        assert lines[4] == "| x | 1 |"


class TestAsciiPlot:
    def test_no_data(self):
        assert ascii_series_plot([None, None]) == "(no data)"

    def test_plot_dimensions(self):
        text = ascii_series_plot([0.1, 0.5, 1.0], height=5, label="xs")
        lines = text.splitlines()
        assert len(lines) == 5 + 2  # bars + axis + label
        assert "xs" in lines[-1]

    def test_gaps_are_blank(self):
        text = ascii_series_plot([1.0, None, 1.0], height=3)
        assert " " in text.splitlines()[0]
