"""Smart-constructor and simplification tests.

The key invariant: simplification preserves the denoted language, which
is checked against the DFA-equivalence oracle.
"""

from hypothesis import given, settings

from _fixtures import regexes
from repro.regex import dfa
from repro.regex.ast import Char, Concat, EMPTY, EPSILON, Question, Star, Union
from repro.regex.simplify import (
    is_nullable,
    simplify,
    smart_concat,
    smart_question,
    smart_star,
    smart_union,
)


class TestNullable:
    def test_atoms(self):
        assert is_nullable(EPSILON)
        assert not is_nullable(EMPTY)
        assert not is_nullable(Char("0"))

    def test_star_and_question_are_nullable(self):
        assert is_nullable(Star(Char("0")))
        assert is_nullable(Question(Char("0")))

    def test_concat_needs_both(self):
        assert is_nullable(Concat(Star(Char("0")), Question(Char("1"))))
        assert not is_nullable(Concat(Star(Char("0")), Char("1")))

    def test_union_needs_one(self):
        assert is_nullable(Union(Char("0"), EPSILON))
        assert not is_nullable(Union(Char("0"), Char("1")))


class TestSmartConstructors:
    def test_union_identity(self):
        assert smart_union(EMPTY, Char("0")) == Char("0")
        assert smart_union(Char("0"), EMPTY) == Char("0")

    def test_union_idempotence(self):
        assert smart_union(Char("0"), Char("0")) == Char("0")

    def test_union_of_empties(self):
        assert smart_union(EMPTY, EMPTY) == EMPTY

    def test_union_commutative_normalisation(self):
        a = smart_union(Char("0"), Char("1"))
        b = smart_union(Char("1"), Char("0"))
        assert a == b

    def test_concat_annihilator(self):
        assert smart_concat(EMPTY, Char("0")) == EMPTY
        assert smart_concat(Char("0"), EMPTY) == EMPTY

    def test_concat_unit(self):
        assert smart_concat(EPSILON, Char("0")) == Char("0")
        assert smart_concat(Char("0"), EPSILON) == Char("0")

    def test_star_of_trivial(self):
        assert smart_star(EMPTY) == EPSILON
        assert smart_star(EPSILON) == EPSILON

    def test_star_idempotence(self):
        inner = Star(Char("0"))
        assert smart_star(inner) == inner

    def test_star_absorbs_question(self):
        assert smart_star(Question(Char("0"))) == Star(Char("0"))

    def test_question_of_nullable(self):
        assert smart_question(Star(Char("0"))) == Star(Char("0"))
        assert smart_question(EPSILON) == EPSILON
        assert smart_question(EMPTY) == EPSILON

    def test_question_of_char(self):
        assert smart_question(Char("0")) == Question(Char("0"))


class TestSimplifyPreservesLanguage:
    @given(regexes(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_language_preserved(self, regex):
        simplified = simplify(regex)
        assert dfa.regex_equivalent(regex, simplified, "01")

    @given(regexes(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, regex):
        once = simplify(regex)
        assert simplify(once) == once
