"""Bit-kernel tests: the scalar and packed kernels against the IPS /
regex-semantics oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import regexes
from repro.core.bitops import (
    concat_cs,
    concat_cs_naive,
    int_to_lanes,
    lanes_to_int,
    popcount,
    popcount_rows,
    question_cs,
    star_cs,
    union_cs,
)
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe
from repro.regex.ast import Concat, Question, Star, Union


@pytest.fixture(scope="module")
def setting():
    universe = Universe(["0110", "1001", "111", "00"])
    return universe, GuideTable(universe)


class TestPopcount:
    @given(st.integers(min_value=0, max_value=1 << 200))
    @settings(max_examples=60, deadline=None)
    def test_matches_bin_count(self, value):
        assert popcount(value) == bin(value).count("1")


class TestScalarKernelsAgainstRegexSemantics:
    @given(regexes(max_leaves=4), regexes(max_leaves=4))
    @settings(max_examples=60, deadline=None)
    def test_concat(self, r, s):
        universe = Universe(["0110", "1001", "111"])
        guide = GuideTable(universe)
        lhs = concat_cs(
            universe.cs_of_regex(r), universe.cs_of_regex(s), guide
        )
        assert lhs == universe.cs_of_regex(Concat(r, s))

    @given(regexes(max_leaves=4))
    @settings(max_examples=50, deadline=None)
    def test_star(self, r):
        universe = Universe(["0110", "1001", "111"])
        guide = GuideTable(universe)
        lhs = star_cs(universe.cs_of_regex(r), guide, universe)
        assert lhs == universe.cs_of_regex(Star(r))

    @given(regexes(max_leaves=4), regexes(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_union_and_question(self, r, s):
        universe = Universe(["0110", "111"])
        lhs = union_cs(universe.cs_of_regex(r), universe.cs_of_regex(s))
        assert lhs == universe.cs_of_regex(Union(r, s))
        lhs = question_cs(universe.cs_of_regex(r), universe)
        assert lhs == universe.cs_of_regex(Question(r))


class TestNaiveConcatAgreesWithGuideTable:
    @given(st.integers(min_value=0), st.integers(min_value=0))
    @settings(max_examples=60, deadline=None)
    def test_agreement(self, a, b):
        universe = Universe(["0101", "110"])
        guide = GuideTable(universe)
        left = a & universe.full_mask
        right = b & universe.full_mask
        assert concat_cs(left, right, guide) == concat_cs_naive(
            left, right, universe
        )


class TestLanePacking:
    @given(st.integers(min_value=0, max_value=(1 << 192) - 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, cs):
        lanes = int_to_lanes(cs, 3)
        assert lanes.dtype == np.uint64
        assert lanes_to_int(lanes) == cs

    def test_single_lane(self):
        assert lanes_to_int(int_to_lanes(0, 1)) == 0
        assert lanes_to_int(int_to_lanes(2**63, 1)) == 2**63


class TestPopcountRows:
    def test_matches_scalar_popcount(self):
        values = [0, 1, 2**64 - 1, (1 << 100) | 7]
        matrix = np.stack([int_to_lanes(v, 2) for v in values])
        counts = popcount_rows(matrix)
        assert list(counts) == [popcount(v) for v in values]

    def test_empty_matrix(self):
        matrix = np.zeros((0, 2), dtype=np.uint64)
        assert popcount_rows(matrix).shape == (0,)
