"""Shared hypothesis strategies for the test-suite.

Imported explicitly (``from _fixtures import ...``) rather than from
``conftest`` — ``conftest.py`` modules are loaded by pytest under the
bare module name ``conftest``, so importing strategies from them
collides with ``benchmarks/conftest.py`` when collecting from the repo
root.  pytest fixtures stay in ``tests/conftest.py``; plain helpers
live here.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    Question,
    Star,
    Union,
)
from repro.spec import Spec


def regexes(alphabet: str = "01", max_leaves: int = 6):
    """Hypothesis strategy for hole-free regular expressions."""
    leaves = st.one_of(
        st.sampled_from([EMPTY, EPSILON]),
        st.sampled_from([Char(ch) for ch in alphabet]),
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.builds(Star, inner),
            st.builds(Question, inner),
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
        ),
        max_leaves=max_leaves,
    )


def words(alphabet: str = "01", max_size: int = 6):
    """Hypothesis strategy for words over ``alphabet``."""
    return st.text(alphabet=alphabet, max_size=max_size)


def small_specs(alphabet: str = "01", max_len: int = 4, max_each: int = 5):
    """Hypothesis strategy for small valid specifications."""

    def build(pos, neg):
        neg = [w for w in neg if w not in set(pos)]
        return Spec(pos, neg, alphabet=tuple(alphabet))

    word = words(alphabet, max_len)
    return st.builds(
        build,
        st.lists(word, min_size=1, max_size=max_each),
        st.lists(word, min_size=0, max_size=max_each),
    )
