"""Session & serving-layer tests: staging reuse, request/config objects,
batched multi-spec serving, progress streaming and cancellation."""

import pytest

import repro.api.session as session_module
from repro import (
    CancellationToken,
    EngineConfig,
    Session,
    SynthesisRequest,
    SynthesisService,
    Spec,
    synthesize,
)
from repro.regex.cost import CostFunction

INTRO_SPEC = Spec(
    positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
    negative=["", "0", "1", "00", "11", "010"],
)


def _partitions_of(words, count, stride=3):
    """Deterministic non-trivial partitions of one shared word set."""
    specs = []
    for k in range(count):
        positives = [w for i, w in enumerate(words) if (i + k) % stride == 0]
        if not positives or len(positives) == len(words):
            positives = [words[k % len(words)]]
        negatives = [w for w in words if w not in positives]
        specs.append(Spec(positives, negatives))
    return specs


def _key(result):
    return (result.status, result.regex_str, result.cost)


class TestStagingReuse:
    def test_staging_built_exactly_once_for_k_specs(self, monkeypatch):
        """The acceptance criterion: K specs over the same example
        strings trigger exactly one staging build."""
        builds = []
        real_universe = session_module.Universe

        def counting_universe(*args, **kwargs):
            builds.append(args)
            return real_universe(*args, **kwargs)

        monkeypatch.setattr(session_module, "Universe", counting_universe)
        session = Session()
        specs = _partitions_of(INTRO_SPEC.all_words, 5)
        for spec in specs:
            assert session.synthesize(spec).found
        assert len(builds) == 1
        assert session.stats.staging_builds == 1
        assert session.stats.staging_hits == len(specs) - 1

    def test_different_strings_build_separately(self):
        session = Session()
        session.synthesize(Spec(["0"], ["1"]))
        session.synthesize(Spec(["0", "00"], ["1"]))
        assert session.stats.staging_builds == 2

    def test_alphabet_widening_is_a_different_staging(self):
        session = Session()
        session.synthesize(Spec(["0"], ["1"]))
        session.synthesize(Spec(["0"], ["1"], alphabet=("0", "1", "2")))
        assert session.stats.staging_builds == 2

    def test_lru_eviction(self):
        session = Session(max_staged=1)
        session.staging_for(Spec(["0"], ["1"]))
        session.staging_for(Spec(["00"], ["1"]))
        session.staging_for(Spec(["0"], ["1"]))  # evicted, rebuilt
        assert session.stats.staging_builds == 3

    def test_clear_drops_staging(self):
        session = Session()
        session.staging_for(INTRO_SPEC)
        session.clear()
        session.staging_for(INTRO_SPEC)
        assert session.stats.staging_builds == 2

    def test_cost_function_sweep_shares_staging(self):
        session = Session()
        sweep = [
            session.synthesize(SynthesisRequest(spec=INTRO_SPEC, cost_fn=cf))
            for cf in (CostFunction.uniform(),
                       CostFunction.from_tuple((1, 1, 10, 1, 1)),
                       CostFunction.from_tuple((5, 5, 5, 5, 5)))
        ]
        assert all(r.found for r in sweep)
        assert session.stats.staging_builds == 1


class TestSessionResults:
    def test_matches_facade(self):
        session = Session()
        assert _key(session.synthesize(INTRO_SPEC)) == _key(
            synthesize(INTRO_SPEC)
        )

    def test_request_tuple_coercion(self):
        session = Session()
        result = session.synthesize((["0", "00"], ["1"]))
        assert result.found

    def test_per_request_config_override(self):
        session = Session(EngineConfig(backend="vector"))
        scalar = session.synthesize(
            SynthesisRequest(spec=INTRO_SPEC,
                             config=EngineConfig(backend="cpu"))
        )
        assert scalar.backend == "scalar"
        assert _key(scalar) == _key(session.synthesize(INTRO_SPEC))

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Session(EngineConfig(backend="tpu"))


@pytest.mark.parametrize("backend", ["scalar", "vector"])
class TestSynthesizeMany:
    def test_batch_is_bit_identical_to_solo(self, backend):
        session = Session(EngineConfig(backend=backend))
        specs = _partitions_of(INTRO_SPEC.all_words, 6)
        batch = session.synthesize_many(specs)
        for spec, result in zip(specs, batch):
            solo = synthesize(spec, backend=backend)
            assert _key(result) == _key(solo)
            assert result.extra.get("batched") is True
        assert session.stats.batch_groups == 1
        assert session.stats.staging_builds == 1

    def test_batch_with_allowed_error(self, backend):
        session = Session(EngineConfig(backend=backend))
        requests = [
            SynthesisRequest(spec=INTRO_SPEC, allowed_error=e)
            for e in (0.0, 0.2, 0.4)
        ]
        batch = session.synthesize_many(requests)
        for request, result in zip(requests, batch):
            solo = synthesize(request.spec, backend=backend,
                              allowed_error=request.allowed_error)
            assert _key(result) == _key(solo)

    def test_batch_respects_per_request_max_cost(self, backend):
        session = Session(EngineConfig(backend=backend))
        hard = _partitions_of(INTRO_SPEC.all_words, 3)
        requests = [SynthesisRequest(spec=s, max_cost=2) for s in hard]
        requests.append(SynthesisRequest(spec=hard[0]))
        batch = session.synthesize_many(requests)
        for request, result in zip(requests, batch):
            solo = synthesize(request.spec, backend=backend,
                              max_cost=request.max_cost)
            assert _key(result) == _key(solo)
        assert batch[0].status == "not_found"
        assert batch[-1].found

    def test_batch_matches_solo_below_literal_cost(self, backend):
        # The solo sweep seeds the literal level even when max_cost is
        # below it, so a cost-c1 solution is still found; the batch
        # scan must mirror that.
        session = Session(EngineConfig(backend=backend))
        requests = [
            SynthesisRequest(spec=Spec(["0"], ["1"]), max_cost=0),
            SynthesisRequest(spec=Spec(["1"], ["0"]), max_cost=0),
        ]
        batch = session.synthesize_many(requests)
        for request, result in zip(requests, batch):
            solo = synthesize(request.spec, backend=backend, max_cost=0)
            assert _key(result) == _key(solo)
            assert result.found  # the literal level solves both

    def test_trivial_solutions_in_batch(self, backend):
        # ∅ (reject everything) and ε solve at cost c1 without a sweep.
        session = Session(EngineConfig(backend=backend))
        requests = [
            SynthesisRequest(spec=Spec([], ["0", "1"])),
            SynthesisRequest(spec=Spec([""], ["0", "1"])),
            SynthesisRequest(spec=Spec(["0"], ["1", ""])),
        ]
        batch = session.synthesize_many(requests)
        for request, result in zip(requests, batch):
            solo = synthesize(request.spec, backend=backend)
            assert _key(result) == _key(solo)


class TestSynthesizeManyGrouping:
    def test_mixed_universes_group_separately(self):
        session = Session()
        group_a = _partitions_of(INTRO_SPEC.all_words, 3)
        group_b = _partitions_of(("", "a", "ab", "abb", "b"), 3)
        interleaved = [v for pair in zip(group_a, group_b) for v in pair]
        batch = session.synthesize_many(interleaved)
        for spec, result in zip(interleaved, batch):
            assert _key(result) == _key(synthesize(spec))
        assert session.stats.batch_groups == 2
        assert session.stats.staging_builds == 2

    def test_different_cost_functions_do_not_share_a_sweep(self):
        session = Session()
        requests = [
            SynthesisRequest(spec=INTRO_SPEC),
            SynthesisRequest(spec=INTRO_SPEC,
                             cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1))),
        ]
        batch = session.synthesize_many(requests)
        assert session.stats.batch_groups == 0
        assert all(r.extra.get("batched") is None for r in batch)
        assert session.stats.staging_builds == 1  # staging still shared

    def test_backend_aliases_share_a_sweep_group(self):
        session = Session()
        specs = _partitions_of(INTRO_SPEC.all_words, 2)
        batch = session.synthesize_many([
            SynthesisRequest(spec=specs[0],
                             config=EngineConfig(backend="gpu")),
            SynthesisRequest(spec=specs[1],
                             config=EngineConfig(backend="vector")),
        ])
        assert session.stats.batch_groups == 1
        for spec, result in zip(specs, batch):
            assert _key(result) == _key(synthesize(spec))

    def test_bounded_cache_forces_solo_serving(self):
        session = Session(EngineConfig(max_cache_size=10_000))
        specs = _partitions_of(INTRO_SPEC.all_words, 3)
        batch = session.synthesize_many(specs)
        assert session.stats.batch_groups == 0
        for spec, result in zip(specs, batch):
            assert _key(result) == _key(
                synthesize(spec, max_cache_size=10_000)
            )

    def test_empty_batch(self):
        assert Session().synthesize_many([]) == []


class TestProgressAndCancellation:
    def test_progress_events_stream_and_finish(self):
        events = []
        session = Session()
        result = session.synthesize(
            SynthesisRequest(spec=INTRO_SPEC, on_progress=events.append)
        )
        assert result.found
        assert events, "expected at least one progress event"
        costs = [e.cost for e in events if not e.done]
        assert costs == sorted(costs)
        final = events[-1]
        assert final.done
        assert final.incumbent is result

    def test_progress_events_carry_monotonic_elapsed_s(self):
        """``elapsed_s`` is the engine's own monotonic clock: present on
        every event, non-negative, non-decreasing, and still meaningful
        after a pickle round-trip (the cross-process forwarding case)."""
        import pickle

        events = []
        result = Session().synthesize(
            SynthesisRequest(spec=INTRO_SPEC, on_progress=events.append)
        )
        assert result.found
        elapsed = [e.elapsed_s for e in events]
        assert all(v >= 0.0 for v in elapsed)
        assert elapsed == sorted(elapsed)
        # The final event reflects the whole sweep: no earlier event
        # can claim more engine time.
        assert events[-1].done
        assert events[-1].elapsed_s == max(elapsed)
        # Self-describing across process boundaries: the timing
        # survives serialisation instead of needing the receiver's
        # clocks.
        revived = pickle.loads(pickle.dumps(events[-1]))
        assert revived.elapsed_s == events[-1].elapsed_s
        assert revived.elapsed_seconds == events[-1].elapsed_seconds

    def test_engine_elapsed_clock_starts_at_run(self):
        session = Session()
        engine = session.make_engine(SynthesisRequest(spec=INTRO_SPEC))
        assert engine.elapsed_s == 0.0  # before run(): no clock yet
        engine.run(3)
        assert engine.run_started_monotonic is not None
        assert engine.elapsed_s > 0.0

    def test_cancellation_token_stops_the_search(self):
        token = CancellationToken()
        token.cancel()
        result = Session().synthesize(
            SynthesisRequest(spec=INTRO_SPEC, cancel=token)
        )
        assert result.status == "cancelled"
        assert not result.found

    def test_cancel_mid_search_via_progress(self):
        token = CancellationToken()
        events = []

        def cancel_after_first(event):
            events.append(event)
            token.cancel()

        result = Session().synthesize(
            SynthesisRequest(spec=INTRO_SPEC, cancel=token,
                             on_progress=cancel_after_first)
        )
        assert result.status == "cancelled"
        assert events

    def test_time_limit_zero_cancels(self):
        result = Session().synthesize(
            SynthesisRequest(spec=INTRO_SPEC, time_limit=0.0)
        )
        assert result.status == "cancelled"

    def test_generous_time_limit_succeeds(self):
        result = Session().synthesize(
            SynthesisRequest(spec=Spec(["0"], ["1"]), time_limit=60.0)
        )
        assert result.found


class TestRequestObjects:
    def test_replace(self):
        request = SynthesisRequest(spec=INTRO_SPEC)
        relaxed = request.replace(allowed_error=0.25)
        assert relaxed.allowed_error == 0.25
        assert relaxed.spec is INTRO_SPEC
        assert request.allowed_error == 0.0

    def test_config_replace(self):
        config = EngineConfig()
        scalar = config.replace(backend="scalar")
        assert scalar.backend == "scalar"
        assert config.backend == "vector"

    def test_invalid_allowed_error_rejected_in_batch(self):
        session = Session()
        bad = [SynthesisRequest(spec=s, allowed_error=1.5)
               for s in _partitions_of(INTRO_SPEC.all_words, 2)]
        with pytest.raises(ValueError, match="allowed_error"):
            session.synthesize_many(bad)


class TestSynthesisService:
    def test_serves_requests(self):
        service = SynthesisService()
        assert service.synthesize(INTRO_SPEC).found
        assert service.stats.requests_served == 1

    def test_batch_through_service(self):
        service = SynthesisService()
        specs = _partitions_of(INTRO_SPEC.all_words, 4)
        batch = service.synthesize_many(specs)
        assert all(r.found for r in batch)
        assert service.stats.batch_groups == 1

    def test_isolated_sessions_share_registry(self):
        service = SynthesisService()
        session = service.session(EngineConfig(backend="cpu"))
        assert session.registry is service.registry
        assert session.synthesize(Spec(["0"], ["1"])).backend == "scalar"
        assert service.stats.staging_builds == 0  # isolated cache
