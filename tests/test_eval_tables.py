"""Table-regeneration tests on tiny configurations.

These exercise every experiment path end-to-end; the real-scale runs
live in benchmarks/ and are recorded in EXPERIMENTS.md.
"""


from repro.eval.figures import figure1
from repro.eval.tables import (
    ablation_cache_capacity,
    ablation_guide_table,
    ablation_uniqueness,
    error_table,
    outlier_table,
    table1,
    table2,
)
from repro.spec import Spec
from repro.suites.alpharegex_suite import task_by_name


class TestTable1:
    def test_tiny_run(self):
        from repro.regex.cost import CostFunction

        cfs = [CostFunction.uniform(), CostFunction.from_tuple((1, 1, 10, 1, 1))]
        table = table1(pool_size=2, cost_functions=cfs,
                       max_generated=40_000, base_seed=5)
        # 2 types × 2 cost fns + average row
        assert len(table.rows) == 5
        rendered = table.render()
        assert "Speed-up" in rendered
        # every data row that completed reports a shared # REs column
        for row in table.rows[:-1]:
            if row[8] is not None:
                assert row[8] > 0

    def test_speedup_direction(self):
        """The Table 1 shape: the vectorised engine wins on hard rows."""
        from repro.regex.cost import CostFunction

        table = table1(pool_size=3, cost_functions=[CostFunction.uniform()],
                       max_generated=120_000, base_seed=2)
        data_rows = [r for r in table.rows if r[5] is not None]
        assert data_rows, "expected at least one completed row"
        hard = [r for r in data_rows if r[8] and r[8] > 20_000]
        for row in hard:
            cpu_s, gpu_s = row[5], row[6]
            assert cpu_s > gpu_s


class TestTable2:
    def test_three_tasks(self):
        tasks = [task_by_name("no1"), task_by_name("no11"), task_by_name("no17")]
        table = table2(tasks=tasks, n_pos=6, n_neg=6, max_len=6,
                       paresy_budget=500_000, alpharegex_budget=20_000)
        assert len(table.rows) == 3
        for row in table.rows:
            # Paresy cost never exceeds AlphaRegex's (minimality).
            if row[4] is not None and row[5] is not None:
                assert row[5] <= row[4]

    def test_budget_rows_render_na(self):
        tasks = [task_by_name("no9")]  # the paper's OOM task
        table = table2(tasks=tasks, n_pos=6, n_neg=6, max_len=6,
                       paresy_budget=2_000, alpharegex_budget=50)
        rendered = table.render()
        assert "N/A" in rendered


class TestOutliers:
    def test_percentages(self):
        table = outlier_table([0.05, 0.2, 3.0, None], thresholds=(0.1, 1.0, 5.0))
        row = table.rows[0]
        assert row[1] == "25.00"   # only 0.05 under 0.1
        assert row[2] == "50.00"   # 0.05 and 0.2 under 1.0
        assert row[3] == "75.00"   # all but the None under 5.0

    def test_empty(self):
        table = outlier_table([])
        assert table.rows[0][1] == "0.00"


class TestErrorTable:
    def test_paper_rows(self):
        table = error_table(errors=(0.50, 0.40, 0.30))
        rendered = table.render()
        assert "∅" in rendered
        assert "10?" in rendered
        assert "(0+11)*1" in rendered

    def test_budget_row_is_na(self):
        table = error_table(errors=(0.0,), max_generated=1_000)
        assert table.rows[0][1] is None


class TestAblations:
    def test_guide_table_ablation(self):
        spec = Spec(["10", "100"], ["", "0", "1"])
        table = ablation_guide_table(spec)
        assert len(table.rows) == 2
        # identical candidate counts and result with and without staging
        assert table.rows[0][2] == table.rows[1][2]
        assert table.rows[0][3] == table.rows[1][3]

    def test_uniqueness_ablation(self):
        spec = Spec(["10", "100"], ["", "0", "1"])
        table = ablation_uniqueness(spec, max_generated=500_000)
        on, off = table.rows
        assert on[1] == "success"
        # without deduplication the cache holds at least as many CSs
        assert off[4] >= on[4]

    def test_cache_capacity_ablation(self):
        table = ablation_cache_capacity(
            Spec(["10", "101", "100"], ["", "0", "1", "11"]),
            capacities=(None, 50, 3),
        )
        statuses = [row[1] for row in table.rows]
        assert statuses[0] == "success"
        assert statuses[-1] == "oom"


class TestFigure1Small:
    def test_structure_and_render(self):
        data = figure1(type1_count=2, type2_count=2, max_generated=60_000)
        assert len(data.benchmark_names) == 4
        assert len(data.cost_functions) == 12
        rendered = data.render()
        assert "Figure 1 summary" in rendered
        sorted_data = data.sorted_by_uniform()
        series = sorted_data.elapsed[(1, 1, 1, 1, 1)]
        solved = [v for v in series if v is not None]
        assert solved == sorted(solved)
