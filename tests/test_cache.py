"""Language-cache tests: level index, int cache, packed cache."""

import numpy as np
import pytest

from repro.core.cache import IntCache, LevelIndex, PackedCache


class TestLevelIndex:
    def test_mark_and_bounds(self):
        levels = LevelIndex()
        levels.mark(1, 0, 2)
        levels.mark(3, 2, 7)
        assert levels.bounds(1) == (0, 2)
        assert levels.bounds(3) == (2, 7)
        assert levels.bounds(2) is None
        assert levels.costs() == (1, 3)
        assert levels.last_complete_cost == 3
        assert levels.size_of(3) == 5
        assert levels.size_of(99) == 0

    def test_double_mark_rejected(self):
        levels = LevelIndex()
        levels.mark(1, 0, 1)
        with pytest.raises(ValueError):
            levels.mark(1, 1, 2)

    def test_decreasing_cost_rejected(self):
        levels = LevelIndex()
        levels.mark(5, 0, 1)
        with pytest.raises(ValueError):
            levels.mark(3, 1, 2)

    def test_empty_levels_allowed(self):
        levels = LevelIndex()
        levels.mark(1, 0, 0)
        assert levels.size_of(1) == 0
        assert levels.last_complete_cost == 1

    def test_initially_no_complete_cost(self):
        assert LevelIndex().last_complete_cost is None


class TestIntCache:
    def test_append_returns_indices(self):
        cache = IntCache()
        assert cache.append(5, 2, 0, -1) == 0
        assert cache.append(9, 3, 0, -1) == 1
        assert cache.cs_at(0) == 5
        assert cache.provenance[1] == (3, 0, -1)
        assert len(cache) == 2

    def test_capacity(self):
        cache = IntCache(max_size=2)
        assert not cache.is_full
        cache.append(1, 0, 0, -1)
        cache.append(2, 0, 0, -1)
        assert cache.is_full

    def test_unbounded_never_full(self):
        cache = IntCache()
        cache.append(1, 0, 0, -1)
        assert not cache.is_full


class TestPackedCache:
    def test_append_and_read(self):
        cache = PackedCache(lanes=2)
        row = np.array([7, 1], dtype=np.uint64)
        index = cache.append_row(row, 5, 3, 4)
        assert index == 0
        assert list(cache.row(0)) == [7, 1]
        assert cache.provenance[0] == (5, 3, 4)

    def test_growth_preserves_rows(self):
        cache = PackedCache(lanes=1)
        for value in range(200):
            cache.append_row(np.array([value], dtype=np.uint64), 0, value, -1)
        assert len(cache) == 200
        assert int(cache.row(123)[0]) == 123
        assert cache.matrix.shape[0] >= 200

    def test_rows_view(self):
        cache = PackedCache(lanes=1)
        for value in range(10):
            cache.append_row(np.array([value], dtype=np.uint64), 0, value, -1)
        view = cache.rows(2, 5)
        assert [int(v[0]) for v in view] == [2, 3, 4]

    def test_capacity(self):
        cache = PackedCache(lanes=1, max_size=1)
        cache.append_row(np.zeros(1, dtype=np.uint64), 0, 0, -1)
        assert cache.is_full
