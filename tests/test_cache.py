"""Language-cache tests: level index, int cache, packed cache."""

import numpy as np
import pytest

from repro.core.cache import IntCache, LevelIndex, PackedCache


class TestLevelIndex:
    def test_mark_and_bounds(self):
        levels = LevelIndex()
        levels.mark(1, 0, 2)
        levels.mark(3, 2, 7)
        assert levels.bounds(1) == (0, 2)
        assert levels.bounds(3) == (2, 7)
        assert levels.bounds(2) is None
        assert levels.costs() == (1, 3)
        assert levels.last_complete_cost == 3
        assert levels.size_of(3) == 5
        assert levels.size_of(99) == 0

    def test_double_mark_rejected(self):
        levels = LevelIndex()
        levels.mark(1, 0, 1)
        with pytest.raises(ValueError):
            levels.mark(1, 1, 2)

    def test_decreasing_cost_rejected(self):
        levels = LevelIndex()
        levels.mark(5, 0, 1)
        with pytest.raises(ValueError):
            levels.mark(3, 1, 2)

    def test_empty_levels_allowed(self):
        levels = LevelIndex()
        levels.mark(1, 0, 0)
        assert levels.size_of(1) == 0
        assert levels.last_complete_cost == 1

    def test_initially_no_complete_cost(self):
        assert LevelIndex().last_complete_cost is None


class TestIntCache:
    def test_append_returns_indices(self):
        cache = IntCache()
        assert cache.append(5, 2, 0, -1) == 0
        assert cache.append(9, 3, 0, -1) == 1
        assert cache.cs_at(0) == 5
        assert cache.provenance[1] == (3, 0, -1)
        assert len(cache) == 2

    def test_capacity(self):
        cache = IntCache(max_size=2)
        assert not cache.is_full
        cache.append(1, 0, 0, -1)
        cache.append(2, 0, 0, -1)
        assert cache.is_full

    def test_unbounded_never_full(self):
        cache = IntCache()
        cache.append(1, 0, 0, -1)
        assert not cache.is_full


class TestPackedCache:
    def test_append_and_read(self):
        cache = PackedCache(lanes=2)
        row = np.array([7, 1], dtype=np.uint64)
        index = cache.append_row(row, 5, 3, 4)
        assert index == 0
        assert list(cache.row(0)) == [7, 1]
        assert cache.provenance[0] == (5, 3, 4)

    def test_growth_preserves_rows(self):
        cache = PackedCache(lanes=1)
        for value in range(200):
            cache.append_row(np.array([value], dtype=np.uint64), 0, value, -1)
        assert len(cache) == 200
        assert int(cache.row(123)[0]) == 123
        assert cache.matrix.shape[0] >= 200

    def test_rows_view(self):
        cache = PackedCache(lanes=1)
        for value in range(10):
            cache.append_row(np.array([value], dtype=np.uint64), 0, value, -1)
        view = cache.rows(2, 5)
        assert [int(v[0]) for v in view] == [2, 3, 4]

    def test_capacity(self):
        cache = PackedCache(lanes=1, max_size=1)
        cache.append_row(np.zeros(1, dtype=np.uint64), 0, 0, -1)
        assert cache.is_full


def _fill(cache, values):
    for value in values:
        cache.append_row(np.array([value], dtype=np.uint64), 0, 0, -1)


class TestPlaneCache:
    """The lazily bit-sliced per-level plane cache of `PackedCache`."""

    def test_planes_match_bitslice_of_rows(self):
        from repro.core.bitops import bitslice_rows

        cache = PackedCache(lanes=1)
        _fill(cache, range(40))
        planes = cache.planes(8, 24, n_bits=10)
        expected = bitslice_rows(cache.rows(8, 24), 10)
        assert np.array_equal(planes, expected)

    def test_second_request_is_served_from_the_cache(self):
        cache = PackedCache(lanes=1)
        _fill(cache, range(16))
        first = cache.planes(0, 16, n_bits=8)
        second = cache.planes(0, 16, n_bits=8)
        assert first is second
        assert cache.plane_stats["builds"] == 1
        assert cache.plane_stats["hits"] == 1

    def test_append_to_a_level_never_serves_stale_planes(self):
        """Slice a growing level, append, slice again: the grown range
        is a fresh (correct) build, never the stale cached entry."""
        from repro.core.bitops import bitslice_rows, lanes_to_int, unbitslice_rows

        cache = PackedCache(lanes=1)
        _fill(cache, [1, 2, 3, 4])
        small = cache.planes(0, 4, n_bits=8)
        _fill(cache, [5, 6, 7, 8])
        grown = cache.planes(0, 8, n_bits=8)
        assert grown is not small
        assert np.array_equal(grown, bitslice_rows(cache.rows(0, 8), 8))
        # The grown planes really contain the appended rows.
        back = unbitslice_rows(grown, 8, 1)
        assert [lanes_to_int(r) for r in back] == [1, 2, 3, 4, 5, 6, 7, 8]
        # The old (prefix) entry stays correct for its own range.
        assert np.array_equal(small, bitslice_rows(cache.rows(0, 4), 8))

    def test_unstored_range_rejected(self):
        cache = PackedCache(lanes=1)
        _fill(cache, range(4))
        with pytest.raises(ValueError):
            cache.planes(0, 5, n_bits=8)
        with pytest.raises(ValueError):
            cache.planes(-1, 2, n_bits=8)

    def test_lru_eviction_respects_the_byte_budget(self):
        cache = PackedCache(lanes=1, plane_cache_bytes=40)
        _fill(cache, range(64))
        a = cache.planes(0, 16, n_bits=8)   # 8 x 2 = 16 bytes
        cache.planes(16, 32, n_bits=8)
        cache.planes(32, 48, n_bits=8)
        cache.planes(48, 64, n_bits=8)
        cache.planes(0, 16, n_bits=8)  # the LRU entry (a) was evicted
        assert cache.plane_stats["evictions"] >= 1
        assert cache.plane_stats["builds"] >= 5
        # Rebuilt entry is still correct.
        assert np.array_equal(a, cache.planes(0, 16, n_bits=8))

    def test_oversized_single_entry_is_still_served(self):
        cache = PackedCache(lanes=1, plane_cache_bytes=1)
        _fill(cache, range(32))
        planes = cache.planes(0, 32, n_bits=8)
        assert planes.shape == (8, 4)
