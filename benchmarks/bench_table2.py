"""E3 — Table 2: AlphaRegex vs Paresy on the classic 25-task suite.

* ``test_bench_alpharegex_no1`` / ``test_bench_paresy_no1`` time both
  systems on the same task so the pytest-benchmark table shows the
  paper's shape (Paresy faster despite checking more candidates).
* ``test_regenerate_table2`` rebuilds the full comparison table into
  ``benchmarks/results/table2.txt``.
"""

from __future__ import annotations

import pytest

from _bench_utils import is_full, save_artifact
from repro import ALPHAREGEX_COST, synthesize
from repro.baselines.alpharegex import alpharegex_synthesize
from repro.eval.tables import table2
from repro.suites.alpharegex_suite import ALPHAREGEX_TASKS, easy_tasks, task_by_name


@pytest.fixture(scope="module")
def no1_spec():
    return task_by_name("no1").build_spec(n_pos=8, n_neg=8, max_len=6)


def test_bench_alpharegex_no1(benchmark, no1_spec):
    result = benchmark.pedantic(
        lambda: alpharegex_synthesize(no1_spec, max_expanded=50_000),
        rounds=1, iterations=1,
    )
    assert result.found


def test_bench_paresy_no1(benchmark, no1_spec):
    result = benchmark.pedantic(
        lambda: synthesize(no1_spec, cost_fn=ALPHAREGEX_COST, backend="scalar"),
        rounds=1, iterations=1,
    )
    assert result.found


def test_paresy_never_costlier_than_alpharegex(no1_spec):
    ours = synthesize(no1_spec, cost_fn=ALPHAREGEX_COST, backend="scalar")
    theirs = alpharegex_synthesize(no1_spec, max_expanded=50_000)
    assert ours.found and theirs.found
    assert ours.cost <= theirs.cost


def test_regenerate_table2(benchmark, results_dir):
    if is_full():
        tasks = ALPHAREGEX_TASKS
        pa_budget, ar_budget = 3_000_000, 60_000
        n_pos = n_neg = 10
    else:
        tasks = easy_tasks()[:8]
        pa_budget, ar_budget = 400_000, 15_000
        n_pos = n_neg = 8

    def run():
        return table2(tasks=tasks, n_pos=n_pos, n_neg=n_neg, max_len=7,
                      paresy_budget=pa_budget, alpharegex_budget=ar_budget)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "table2.txt", table.render())
    solved = [r for r in table.rows if r[5] is not None]
    assert solved
