"""Preemption benchmarks: bounded interactive latency under batch load.

The evidence behind the preemptive scheduler:

* **interactive latency** — the same interactive queries served three
  ways: on an otherwise idle server (baseline), against a CPU-heavy
  batch job with admission-triggered preemption on, and against the
  same batch job with preemption off (the contrast run).  The artifact
  records the latency distributions; the asserted bound is the PR's
  acceptance bar: interactive p99 with preemption stays within 2x the
  interactive-only baseline.
* **preempted answers are exact** — a batch job is preempted mid-level
  by an interactive admission, resumes from its partial checkpoint and
  runs to completion; its answer must be bit-identical to the same
  query served undisturbed, with the preemption visible in the result's
  ``extra`` counters and on the server's ``/healthz``.

:func:`test_preempt_bench_artifact` writes ``BENCH_preempt.json`` to
the repo root.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from _bench_utils import REPO_ROOT, is_full
from repro import EngineConfig, Spec, SynthesisRequest
from repro.server import HttpServiceClient, SynthesisServer

#: ~0.15 s of scalar CPU: long enough that preemption overheads are a
#: fraction of the latency, short enough to sample many rounds.
INTERACTIVE_SPEC = Spec(
    positive=["00", "0101", "0101011"], negative=["", "1", "011", "0010"]
)
#: ~1.8 s of scalar CPU — the batch job the interactive traffic must
#: not wait behind.
BATCH_SPEC = Spec(
    positive=["00110100", "11001011"], negative=["0", "11", "1001001"]
)

SCALAR = EngineConfig(backend="scalar")

#: Job ids are content-addressed (a resubmitted identical request is
#: the same job), so each measured round salts the request with a
#: distinct — and unreachably large — generation budget.
_NONCE_BASE = 10_000_000
_nonce_counter = [0]


def _salted(config):
    _nonce_counter[0] += 1
    return config.replace(max_generated=_NONCE_BASE + _nonce_counter[0])

#: The batch job is preempted this long after submission — far inside
#: its run, so every round really does interrupt mid-enumeration.
BATCH_HEAD_START_S = 0.4


def _rounds():
    if is_full():
        return {"baseline": 12, "preempt": 8, "no_preempt": 5}
    return {"baseline": 4, "preempt": 4, "no_preempt": 3}


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _stats(samples):
    return {
        "rounds": len(samples),
        "p50_s": _percentile(samples, 0.50),
        "p99_s": _percentile(samples, 0.99),
        "max_s": max(samples),
        "samples_s": samples,
    }


def _server(root, name, **kwargs):
    """A one-worker-per-lane server with slots sized so that *every*
    interactive admission finds its lane saturated (and so triggers a
    preemption attempt when enabled)."""
    return SynthesisServer(
        store_dir=os.path.join(root, name),
        interactive_workers=1,
        batch_workers=1,
        per_worker_depth=1,
        reuse_results=False,
        # A preempted batch attempt re-enters its lane after this long;
        # keeping it beyond the interactive runtime means one measured
        # query runs on a machine the batch job has fully yielded.
        retry_backoff_s=1.0,
        retry_jitter=0.0,
        **kwargs,
    )


def _measure_interactive(client):
    started = time.perf_counter()
    job = client.submit(
        SynthesisRequest(spec=INTERACTIVE_SPEC, config=_salted(SCALAR)),
        klass="interactive",
    )
    done = client.result(job["job_id"], timeout=120)
    latency = time.perf_counter() - started
    assert done["state"] == "done"
    return latency


def _submit_batch(client):
    job = client.submit(
        SynthesisRequest(spec=BATCH_SPEC, config=_salted(SCALAR)), klass="batch"
    )
    time.sleep(BATCH_HEAD_START_S)
    return job["job_id"]


def _bench_latency(root, preempt, rounds, name):
    """Interactive latency against a live batch job, per preempt mode.

    Checkpoints are off so every round is a cold, identical query —
    warm level-restores would otherwise make later rounds incomparable
    to earlier ones.
    """
    latencies = []
    with _server(
        root, name, checkpoints=False, preempt_on_saturation=preempt
    ).start() as server:
        with HttpServiceClient(server.address) as client:
            for _ in range(rounds):
                batch_id = _submit_batch(client)
                latencies.append(_measure_interactive(client))
                client.cancel(batch_id)
                client.result(batch_id, timeout=120)
            health = client.healthz()
    triggered = health["preemptions_triggered"]
    if preempt:
        assert triggered == rounds, (
            "every interactive admission must preempt the running batch "
            "job (%d of %d rounds did)" % (triggered, rounds))
    else:
        assert triggered == 0
    return _stats(latencies), health


def _bench_baseline(root, rounds):
    """The same interactive queries on an otherwise idle server."""
    latencies = []
    with _server(
        root, "baseline", checkpoints=False, preempt_on_saturation=True
    ).start() as server:
        with HttpServiceClient(server.address) as client:
            for _ in range(rounds):
                latencies.append(_measure_interactive(client))
    return _stats(latencies)


def _result_identity(document):
    result = document["result"]
    return tuple(
        result[key]
        for key in (
            "status", "regex", "cost", "generated", "unique_cs",
            "levels_built",
        )
    )


def _bench_preempted_identity(root):
    """Preempt a store-backed batch job mid-level; its resumed answer
    must be bit-identical to the undisturbed reference."""
    with _server(
        root, "ref", checkpoints=True, preempt_on_saturation=True
    ).start() as server:
        with HttpServiceClient(server.address) as client:
            job = client.submit(
                SynthesisRequest(spec=BATCH_SPEC, config=_salted(SCALAR)),
                klass="batch",
            )
            reference = client.result(job["job_id"], timeout=300)
    with _server(
        root, "preempted", checkpoints=True, preempt_on_saturation=True
    ).start() as server:
        with HttpServiceClient(server.address) as client:
            batch_id = _submit_batch(client)
            _measure_interactive(client)  # triggers the preemption
            preempted = client.result(batch_id, timeout=300)
            health = client.healthz()
    assert _result_identity(preempted) == _result_identity(reference), (
        "a preempted batch job must finish bit-identical to an "
        "undisturbed run")
    extra = preempted["result"]["extra"]
    assert extra["preemptions"] >= 1, "the preemption must be on record"
    assert health["counters"]["preemptions"] >= 1
    return {
        "reference_regex": reference["result"]["regex"],
        "preemptions": extra["preemptions"],
        "attempts": extra["attempts"],
        "partial_resumes": extra.get("partial_resumes", 0),
    }


def test_preempt_bench_artifact():
    """Measure preemptive scheduling and record the evidence."""
    rounds = _rounds()
    root = tempfile.mkdtemp(prefix="repro-bench-preempt-")
    try:
        baseline = _bench_baseline(root, rounds["baseline"])
        with_preempt, health = _bench_latency(
            root, True, rounds["preempt"], "preempt"
        )
        without_preempt, _ = _bench_latency(
            root, False, rounds["no_preempt"], "no-preempt"
        )
        identity = _bench_preempted_identity(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    ratio = with_preempt["p99_s"] / baseline["p99_s"]
    assert ratio <= 2.0, (
        "interactive p99 under batch load with preemption must stay "
        "within 2x the interactive-only baseline (%.3fs vs %.3fs, "
        "%.2fx)" % (with_preempt["p99_s"], baseline["p99_s"], ratio))
    artifact = {
        "benchmark": "preemptive scheduling",
        "scale": "full" if is_full() else "quick",
        "cpu_count": os.cpu_count(),
        "interactive_baseline": baseline,
        "interactive_under_batch_with_preempt": with_preempt,
        "interactive_under_batch_no_preempt": without_preempt,
        "p99_ratio_vs_baseline": ratio,
        "preemptions_triggered": health["preemptions_triggered"],
        "preempted_identity": identity,
    }
    (REPO_ROOT / "BENCH_preempt.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_preempt.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
