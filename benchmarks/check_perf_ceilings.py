"""CI perf smoke: assert kernel throughput stays under checked-in ceilings.

Reads the freshly generated ``BENCH_kernels.json`` (repo root) and the
generous per-op ceilings in ``benchmarks/perf_ceilings.json``; exits
non-zero listing every op whose ns/candidate exceeds its ceiling.  The
ceilings are deliberately loose (see the JSON) — this gate catches
order-of-magnitude kernel regressions, not timer noise.

Usage: ``python benchmarks/check_perf_ceilings.py``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    artifact_path = REPO_ROOT / "BENCH_kernels.json"
    ceilings_path = REPO_ROOT / "benchmarks" / "perf_ceilings.json"
    artifact = json.loads(artifact_path.read_text(encoding="utf-8"))
    ceilings = json.loads(ceilings_path.read_text(encoding="utf-8"))[
        "ceilings_ns_per_candidate"
    ]

    measured = {
        record["op"]: record["ns_per_candidate"]
        for record in artifact["results"]
    }
    failures = []
    for op, ceiling in ceilings.items():
        if op not in measured:
            failures.append("op %r missing from BENCH_kernels.json" % op)
            continue
        if measured[op] > ceiling:
            failures.append(
                "%s: %.1f ns/candidate exceeds the %.0f ns ceiling"
                % (op, measured[op], ceiling)
            )

    for op in sorted(measured):
        note = "" if op in ceilings else "  (no ceiling)"
        print("%-16s %10.1f ns/candidate%s" % (op, measured[op], note))
    if failures:
        print("\nPERF CEILING FAILURES:")
        for failure in failures:
            print("  - " + failure)
        return 1
    print("\nall ops under their ceilings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
