"""Plain helpers shared by the benchmark modules.

Imported explicitly (``from _bench_utils import ...``) so that
``benchmarks/conftest.py`` stays fixture-only and never collides with
``tests/conftest.py`` during root-level collection.  The benchmark
suite's role and layout are documented in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Repo root — the kernel micro-benchmark drops ``BENCH_kernels.json``
#: here so successive PRs accumulate a perf trajectory.
REPO_ROOT = Path(__file__).parent.parent


def bench_scale() -> str:
    """Current scale: ``quick`` (default) or ``full``."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def is_full() -> bool:
    """True when running at full (EXPERIMENTS.md) scale."""
    return bench_scale() == "full"


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Write a regenerated table/figure to ``benchmarks/results/``."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
