"""Tracing-overhead benchmark: traced vs untraced synthesis.

The observability layer's acceptance bar: with ``EngineConfig.trace``
on, the engine emits a full span timeline (staging, per-level deltas,
checkpoint work) and the answer stays **bit-identical** — asserted on
every run — while wall-clock overhead stays under 3% on the wide-spec
workload.  The overhead assertion is gated to full scale
(``REPRO_BENCH_SCALE=full``): at quick scale the workload is
milliseconds long and fixed costs (process start, first numpy call)
dominate, so the honest overhead number is recorded in the artifact
instead of asserted.

:func:`test_emit_obs_bench_artifact` writes ``BENCH_obs.json`` to the
repo root.
"""

from __future__ import annotations

import json
import time

from _bench_utils import REPO_ROOT, bench_scale, is_full
from repro import Spec
from repro.api import EngineConfig, Session, SynthesisRequest
from repro.regex.cost import CostFunction

#: Quick-scale workload: the paper's introduction example — fast enough
#: for CI, deep enough to emit per-level spans.
QUICK_SPEC = Spec(
    positive=["", "0", "00", "100", "1000", "1010", "010"],
    negative=["1", "10", "1001", "101", "11"],
)

#: Full-scale workload (nightly): the sharding benchmark's wide spec —
#: ~1.1M candidates over 13 cost levels, long enough that per-level
#: span bookkeeping would show up if it cost anything.
WIDE_SPEC = Spec(
    positive=["01101001011", "10100101101", "01011010011", "10010110101"],
    negative=["", "0", "1", "11", "10", "00110011001", "11100011101",
              "00000111110", "10110100101", "01100110100"],
)

REPEATS = 3


def run_once(spec: Spec, trace: bool):
    """One cold run (fresh session, fresh staging on both sides)."""
    config = EngineConfig(backend="vector", trace=trace)
    session = Session(config)
    request = SynthesisRequest(
        spec=spec, cost_fn=CostFunction.uniform(), config=config
    )
    started = time.perf_counter()
    result = session.synthesize(request)
    return result, time.perf_counter() - started


def answer_key(result):
    """Everything enumeration-visible about the answer."""
    return (
        result.status,
        result.regex_str,
        result.cost,
        result.generated,
        result.unique_cs,
        result.universe_size,
    )


def test_emit_obs_bench_artifact():
    spec = WIDE_SPEC if is_full() else QUICK_SPEC

    untraced_s, traced_s = [], []
    untraced_result = traced_result = None
    for _ in range(REPEATS):
        untraced_result, elapsed = run_once(spec, trace=False)
        untraced_s.append(elapsed)
        traced_result, elapsed = run_once(spec, trace=True)
        traced_s.append(elapsed)
    assert untraced_result is not None and traced_result is not None

    # Bit-identical answers, unconditionally: tracing must be pure
    # observation.
    assert answer_key(traced_result) == answer_key(untraced_result), (
        "tracing changed the answer: %r vs %r"
        % (answer_key(traced_result), answer_key(untraced_result))
    )

    # Tracing off ⇒ zero spans; on ⇒ a real timeline.
    assert "trace" not in untraced_result.extra
    trace = traced_result.extra["trace"]
    assert trace["spans"], "traced run emitted no spans"

    # Min-of-repeats: the steady-state cost, immune to one-off stalls.
    overhead = (min(traced_s) - min(untraced_s)) / min(untraced_s)
    if is_full():
        assert overhead < 0.03, (
            "tracing overhead must stay < 3%% at full scale, got %.2f%%"
            % (100 * overhead)
        )

    artifact = {
        "benchmark": "tracing overhead (traced vs untraced)",
        "scale": bench_scale(),
        "repeats": REPEATS,
        "positives": len(spec.positive),
        "negatives": len(spec.negative),
        "generated": traced_result.generated,
        "untraced_seconds_min": min(untraced_s),
        "traced_seconds_min": min(traced_s),
        "overhead_fraction": overhead,
        "overhead_asserted": is_full(),
        "span_count": len(trace["spans"]),
        "trace_stages": trace.get("stages"),
        "results_bit_identical": True,
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_obs.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
