"""E6 — ablations of the design choices §3 calls out.

* guide-table staging vs per-construction split recomputation,
* uniqueness checking on/off,
* language-cache capacity sweep (OnTheFly / out-of-memory behaviour),
* power-of-two padding (reported, structural).
"""

from __future__ import annotations

from _bench_utils import is_full, save_artifact
from repro import Spec
from repro.eval.tables import (
    ERROR_TABLE_SPEC,
    ablation_cache_capacity,
    ablation_guide_table,
    ablation_uniqueness,
)
from repro.language.universe import Universe

ABLATION_SPEC = Spec(
    positive=["10", "101", "100", "1010", "1011"],
    negative=["", "0", "1", "00", "11", "010"],
)


def test_regenerate_guide_table_ablation(benchmark, results_dir):
    def run():
        return ablation_guide_table(ABLATION_SPEC,
                                    repeats=3 if is_full() else 1)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_guide_table.txt", table.render())
    staged, naive = table.rows
    # Identical search outcome; staging is never slower at this size.
    assert staged[2] == naive[2]
    assert staged[1] <= naive[1] * 1.2


def test_regenerate_uniqueness_ablation(benchmark, results_dir):
    def run():
        return ablation_uniqueness(ABLATION_SPEC, max_generated=2_000_000)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_uniqueness.txt", table.render())
    on, off = table.rows
    assert on[1] == "success"
    # Without deduplication the cache blows up (or the budget expires).
    assert off[4] > 3 * on[4] or off[1] == "budget"


def test_regenerate_cache_capacity_ablation(benchmark, results_dir):
    def run():
        return ablation_cache_capacity(
            ERROR_TABLE_SPEC if is_full() else ABLATION_SPEC
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_cache_capacity.txt", table.render())
    statuses = [row[1] for row in table.rows]
    assert statuses[0] == "success"
    assert "oom" in statuses  # the smallest capacity must exhaust


def test_report_power_of_two_padding(results_dir):
    """Structural ablation: report the padding waste of the second
    space-time trade-off for growing universes."""
    lines = ["words  padded_bits  lanes  waste_bits"]
    for base in (["01"], ["0101"], ["010101"], ["01010101"],
                 ["0101010101", "1111000011"]):
        universe = Universe(base)
        lines.append(
            "%5d  %11d  %5d  %10d"
            % (universe.n_words, universe.padded_bits, universe.lanes,
               universe.padded_bits - universe.n_words)
        )
    save_artifact(results_dir, "ablation_padding.txt", "\n".join(lines))
