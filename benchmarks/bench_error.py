"""E5 — the §5.2 allowed-error table on the paper's exact specification.

The paper's rows at 15%–50% error are fully reproduced (same regexes,
same costs, candidate counts within a few percent); the 0–10% rows need
19M–27G candidates and are recorded as out of pure-Python reach in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from _bench_utils import is_full, save_artifact
from repro import synthesize
from repro.eval.tables import ERROR_TABLE_SPEC, error_table


def test_regenerate_error_table(benchmark, results_dir):
    errors = (0.50, 0.45, 0.40, 0.35, 0.30, 0.25, 0.20, 0.15) if is_full() \
        else (0.50, 0.45, 0.40, 0.35, 0.30, 0.25, 0.20)

    def run():
        return error_table(errors=errors)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "error_table.txt", table.render())

    # Shape: #REs decreases monotonically as the allowed error grows.
    counts = [row[1] for row in table.rows if row[1] is not None]
    assert counts == sorted(counts)


@pytest.mark.parametrize("error,expected", [(0.50, "∅"), (0.30, "(0+11)*1")])
def test_bench_error_rows(benchmark, error, expected):
    result = benchmark.pedantic(
        lambda: synthesize(ERROR_TABLE_SPEC, allowed_error=error),
        rounds=1, iterations=1,
    )
    assert result.regex_str == expected
