"""E2 — Table 1: scalar ("CPU") vs vector ("GPU-sim") engines.

Two parts:

* ``test_bench_scalar_engine`` / ``test_bench_vector_engine`` time the
  two engines on the same fixed hard specification, so the
  pytest-benchmark table itself exhibits the paper's headline speed-up
  shape (vectorised ≫ scalar, identical ``# REs``).
* ``test_regenerate_table1`` rebuilds the full Table 1 (hardest
  benchmark per (type, cost-function), both engines, speed-up column)
  and stores it under ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from _bench_utils import is_full, save_artifact
from repro import Spec, synthesize
from repro.eval.harness import staging_for
from repro.eval.tables import table1
from repro.regex.cost import EVALUATION_COST_FUNCTIONS

#: A fixed Type-1-style specification hard enough that the engines spend
#: their time in the level kernels (~100k candidates under (1,1,1,1,1)).
HARD_SPEC = Spec(
    positive=["1101", "0110", "100", "0011", "111"],
    negative=["", "0", "11", "010", "1010", "0001"],
)


@pytest.fixture(scope="module")
def staging():
    return staging_for(HARD_SPEC)


def test_bench_scalar_engine(benchmark, staging):
    universe, guide = staging

    def run():
        return synthesize(HARD_SPEC, backend="scalar",
                          universe=universe, guide=guide)

    result = benchmark.pedantic(run, rounds=3 if is_full() else 1,
                                iterations=1)
    assert result.found


def test_bench_vector_engine(benchmark, staging):
    universe, guide = staging

    def run():
        return synthesize(HARD_SPEC, backend="vector",
                          universe=universe, guide=guide)

    result = benchmark.pedantic(run, rounds=3 if is_full() else 1,
                                iterations=1)
    assert result.found


def test_engines_agree_on_res_count(staging):
    universe, guide = staging
    cpu = synthesize(HARD_SPEC, backend="scalar", universe=universe, guide=guide)
    gpu = synthesize(HARD_SPEC, backend="vector", universe=universe, guide=guide)
    assert cpu.generated == gpu.generated
    assert cpu.regex == gpu.regex


def test_regenerate_table1(benchmark, results_dir):
    if is_full():
        cost_functions = EVALUATION_COST_FUNCTIONS
        pool, budget = 8, 200_000
    else:
        cost_functions = EVALUATION_COST_FUNCTIONS[:3]
        pool, budget = 4, 80_000

    def run():
        return table1(pool_size=pool, cost_functions=cost_functions,
                      max_generated=budget)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "table1.txt", table.render())
    data_rows = [r for r in table.rows if r[7] not in (None, "")]
    assert data_rows
