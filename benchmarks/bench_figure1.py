"""E1 — Figure 1: impact of the cost function on synthesis time.

Regenerates the benchmark × cost-function sweep on the vectorised
engine, renders the sorted series and the per-cost-function summary to
``benchmarks/results/figure1.txt``, and asserts the paper's two shape
observations that are stable at reproduction scale:

* most cells finish fast (the paper: 60% < 1s, 73% < 2s on an A100);
* the expensive-union cost function ``(1,1,1,1,10)`` is among the
  slowest configurations on solved cells.
"""

from __future__ import annotations

from _bench_utils import is_full, save_artifact
from repro.eval.figures import figure1


def test_regenerate_figure1(benchmark, results_dir):
    count = 10 if is_full() else 5
    budget = 400_000 if is_full() else 150_000

    def run():
        return figure1(type1_count=count, type2_count=count,
                       max_generated=budget)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(results_dir, "figure1.txt", data.render())

    # Shape 1: a clear majority of cells complete within the budget.
    total = sum(len(series) for series in data.elapsed.values())
    solved = sum(
        1 for series in data.elapsed.values() for v in series if v is not None
    )
    assert solved / total > 0.5

    # Shape 2: the sorted (1,1,1,1,1) series is the paper's x-axis; its
    # sorted form must be monotone (sanity of the sorting convention).
    ordered = data.sorted_by_uniform().elapsed[(1, 1, 1, 1, 1)]
    values = [v for v in ordered if v is not None]
    assert values == sorted(values)


def test_expensive_union_is_slowest_on_average(benchmark, results_dir):
    """Paper: "The (1,1,1,1,10) cost function that makes union expensive
    is usually the slowest one"; compare it against the expensive-star
    function the paper found "often fast"."""
    from repro.regex.cost import CostFunction

    cfs = [
        CostFunction.from_tuple((1, 1, 10, 1, 1)),   # expensive star
        CostFunction.from_tuple((1, 1, 1, 1, 10)),   # expensive union
    ]
    count = 6 if is_full() else 4

    def run():
        return figure1(type1_count=count, type2_count=count,
                       cost_functions=cfs, max_generated=250_000)

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    def mean_generated_proxy(cf):
        series = data.elapsed[cf]
        solved = [v for v in series if v is not None]
        # unsolved cells hit the budget: count them at the max observed
        ceiling = max(solved, default=0.0) or 1.0
        return sum(solved) + ceiling * (len(series) - len(solved))

    star_total = mean_generated_proxy((1, 1, 10, 1, 1))
    union_total = mean_generated_proxy((1, 1, 1, 1, 10))
    save_artifact(
        results_dir,
        "figure1_star_vs_union.txt",
        "expensive-star total %.3fs vs expensive-union total %.3fs"
        % (star_total, union_total),
    )
    # The paper's observation ("expensive union is usually the slowest")
    # is a tendency over hundreds of benchmarks; at quick scale we only
    # assert both configurations produced data and record the measured
    # direction in the artefact for EXPERIMENTS.md.
    assert star_total > 0 and union_total > 0
