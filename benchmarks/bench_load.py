"""Load benchmark of the HTTP synthesis server: latency under mix.

The evidence behind the admission-controlled, two-lane scheduler:

* **interactive-only closed loop** — a few client threads submit small
  distinct specs over HTTP and wait for each answer; the per-request
  round-trip latencies give the interactive baseline (p50/p99) and the
  sustained QPS.
* **mixed traffic** — the same closed loop runs again while an
  *open-loop* injector keeps heavy batch sweeps in flight on the batch
  lane.  The assertion is the whole point of the two-lane design:
  interactive p99 under batch load stays within ``P99_RATIO_LIMIT`` of
  the interactive-only baseline (sub-``P99_FLOOR_S`` baselines are
  noise-dominated on shared CI runners, so the ratio is taken against
  the floor).
* **overload** — interactive submissions past the lane's bounded
  backlog are rejected with 429 + Retry-After, and every rejection
  returns promptly: overload degrades to fast feedback, never a hang.

:func:`test_emit_load_artifact` writes ``BENCH_load.json`` to the repo
root.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import tempfile
import threading
import time

from _bench_utils import REPO_ROOT, bench_scale, is_full
from repro import CostFunction, EngineConfig, Spec
from repro.server import (
    CLASS_BATCH,
    CLASS_INTERACTIVE,
    HttpServiceClient,
    OverloadedError,
    SynthesisServer,
)
from repro.service import WireRequest

#: Mixed-load interactive p99 must stay within this factor of the
#: interactive-only p99 (the two-lane isolation claim).
P99_RATIO_LIMIT = 3.0

#: Baselines below this are timer/scheduler noise on shared runners;
#: the ratio is taken against ``max(p99, floor)``.
P99_FLOOR_S = 0.05

#: Per-request candidate budget of the interactive specs — bounds the
#: worst case so "interactive" stays interactive even on slow runners.
INTERACTIVE_BUDGET = 200_000


def interactive_specs(count):
    """``count`` distinct, quickly-solvable specs (distinct
    fingerprints, so nothing is answered by in-flight dedupe)."""
    specs = []
    for index in range(count):
        word = format(index + 2, "b")
        specs.append(
            Spec(
                positive=[word, word + word],
                negative=["" if "1" in word else "1", word[::-1] + "01"],
            )
        )
    return specs


def interactive_wire(spec):
    return WireRequest(
        spec=spec,
        max_generated=INTERACTIVE_BUDGET,
        config=EngineConfig(backend="vector"),
    )


def batch_wire(index):
    """A heavy sweep (expensive star over a >64-word universe) that
    keeps a batch worker busy for seconds; ``allowed_error`` varies the
    fingerprint so each injection is a fresh job."""
    return WireRequest(
        spec=Spec(
            positive=["0110100101", "1010010110"],
            negative=["", "0", "1", "0011001100"],
        ),
        cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1)),
        max_generated=5_000_000,
        allowed_error=index / 1000.0,
        config=EngineConfig(backend="vector"),
    )


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def closed_loop(address, specs, clients):
    """Serve ``specs`` from ``clients`` threads, one request in flight
    per thread; returns (latencies, wall_seconds)."""
    latencies = []
    lock = threading.Lock()
    queue = list(specs)

    def worker():
        client = HttpServiceClient(address)
        while True:
            with lock:
                if not queue:
                    return
                spec = queue.pop()
            started = time.perf_counter()
            job = client.submit(interactive_wire(spec),
                                klass=CLASS_INTERACTIVE)
            client.result(job["job_id"], timeout=300)
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, time.perf_counter() - started


def phase_stats(latencies, wall_seconds):
    return {
        "requests": len(latencies),
        "wall_seconds": wall_seconds,
        "qps": len(latencies) / wall_seconds if wall_seconds else 0.0,
        "p50_s": percentile(latencies, 0.50),
        "p99_s": percentile(latencies, 0.99),
    }


def test_emit_load_artifact():
    """Drive the three load phases and record the evidence."""
    if is_full():
        requests, clients, batch_jobs = 60, 4, 6
    else:
        requests, clients, batch_jobs = 12, 2, 2

    store_root = tempfile.mkdtemp(prefix="repro-bench-load-")
    try:
        with SynthesisServer(
            store_dir=store_root,
            interactive_workers=1,
            batch_workers=1,
            per_worker_depth=2,
            max_queue={CLASS_INTERACTIVE: 2, CLASS_BATCH: 2 * batch_jobs},
            reuse_results=False,
        ) as server:
            address = server.address
            control = HttpServiceClient(address)

            # Phase 1: interactive-only closed loop (the baseline).
            solo_specs = interactive_specs(requests)
            solo_latencies, solo_wall = closed_loop(
                address, solo_specs, clients
            )
            solo = phase_stats(solo_latencies, solo_wall)

            # Phase 2: the same closed loop under open-loop batch load.
            batch_ids = []
            for index in range(batch_jobs):
                job = control.submit(batch_wire(index), klass=CLASS_BATCH)
                batch_ids.append(job["job_id"])
            mixed_specs = interactive_specs(2 * requests)[requests:]
            mixed_latencies, mixed_wall = closed_loop(
                address, mixed_specs, clients
            )
            mixed = phase_stats(mixed_latencies, mixed_wall)
            batch_live = sum(
                1
                for job_id in batch_ids
                if control.status(job_id)["state"] in ("queued", "running")
            )
            for job_id in batch_ids:
                control.cancel(job_id)
            for job_id in batch_ids:
                control.result(job_id, timeout=300)
            assert batch_live > 0, (
                "batch injections must still be in flight while the "
                "mixed interactive phase runs, or the phase measured "
                "nothing"
            )

            # The two-lane isolation claim, asserted at every scale.
            baseline = max(solo["p99_s"], P99_FLOOR_S)
            ratio = mixed["p99_s"] / baseline
            assert mixed["p99_s"] <= P99_RATIO_LIMIT * baseline, (
                "interactive p99 under batch load must stay within "
                "%.1fx of the interactive-only baseline: %.4fs vs "
                "%.4fs (%.2fx)"
                % (P99_RATIO_LIMIT, mixed["p99_s"], baseline, ratio)
            )

            # Phase 3: overload -> fast 429s, never a hang.
            fillers = []
            rejected = 0
            reject_latencies = []
            for index in range(8):
                started = time.perf_counter()
                try:
                    job = control.submit(
                        batch_wire(100 + index), klass=CLASS_INTERACTIVE
                    )
                except OverloadedError as exc:
                    reject_latencies.append(time.perf_counter() - started)
                    rejected += 1
                    assert exc.retry_after_s >= 1.0
                else:
                    fillers.append(job["job_id"])
            for job_id in fillers:
                control.cancel(job_id)
            for job_id in fillers:
                control.result(job_id, timeout=300)
            assert rejected > 0, "overload must reject past the backlog"
            max_reject = max(reject_latencies)
            assert max_reject < 5.0, (
                "a 429 must come back promptly, slowest took %.2fs"
                % max_reject
            )
            health = control.healthz()
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    artifact = {
        "benchmark": "HTTP server under mixed load",
        "scale": bench_scale(),
        "cpu_count": os.cpu_count(),
        "lanes": {"interactive_workers": 1, "batch_workers": 1,
                  "per_worker_depth": 2},
        "closed_loop_clients": clients,
        "interactive_only": solo,
        "mixed": mixed,
        "batch_jobs_injected": len(batch_ids),
        "interactive_p99_ratio": ratio,
        "p99_ratio_limit": P99_RATIO_LIMIT,
        "p99_floor_s": P99_FLOOR_S,
        "overload": {
            "attempts": 8,
            "rejected_429": rejected,
            "max_reject_latency_s": max_reject,
        },
        "server_admission": health["admission"],
        "server_latency": health["latency"],
    }
    (REPO_ROOT / "BENCH_load.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_load.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
