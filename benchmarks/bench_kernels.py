"""Micro-benchmarks of the primitive kernels both engines are built on.

Not a paper table, but the evidence behind the Table 1 speed-up: the
batched array-level kernels amortise Python overhead across a whole
candidate block, while the scalar kernels pay it per candidate (see
``docs/ARCHITECTURE.md``, "Kernel design").

Besides the pytest-benchmark timings, :func:`test_emit_kernel_bench_artifact`
writes ``BENCH_kernels.json`` to the repo root — one record per kernel
with ns/candidate and the speedup against both the scalar kernel and the
*seed* vector implementation (the pre-flat-gather Python loop nest,
preserved below as :class:`_SeedLoopKernels`) — so successive PRs have a
perf trajectory to compare against.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _bench_utils import REPO_ROOT, bench_scale, is_full
from repro.core.bitops import concat_cs, star_cs
from repro.core.hashset import FingerprintHashSet, PackedKeySet
from repro.core.vector_engine import _Kernels
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe

WORDS = ["110100", "001011", "111000", "010101"]

#: Universe for the perf-trajectory artifact: 10-char heterogeneous
#: words, like the paper's harder Table 1 rows (larger guide table,
#: multi-lane CSs) — the regime the batched kernels are built for.
ARTIFACT_WORDS = ["1101001010", "0010110101", "1110001110"]

_ONE = np.uint64(1)


class _SeedLoopKernels:
    """The seed implementation of the concat kernel (reference baseline).

    This is the pre-rewrite ``_Kernels.concat``: a Python ``for`` loop
    over every universe word and every guide-table split, i.e. the
    "GPU-sim" engine before the flat-gather rewrite.  Kept verbatim so
    ``BENCH_kernels.json`` always measures the new kernels against the
    true seed behaviour.
    """

    def __init__(self, universe: Universe, guide: GuideTable) -> None:
        flat = guide.flat
        self.n_words = universe.n_words
        self.lanes = universe.lanes
        self.offsets = flat.offsets
        self.left_lane = (flat.left_index >> 6).astype(np.int64)
        self.left_off = (flat.left_index & 63).astype(np.uint64)
        self.right_lane = (flat.right_index >> 6).astype(np.int64)
        self.right_off = (flat.right_index & 63).astype(np.uint64)
        self.word_lane = np.arange(self.n_words, dtype=np.int64) >> 6
        self.word_off = (np.arange(self.n_words, dtype=np.int64) & 63).astype(
            np.uint64
        )

    def concat(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        m = left.shape[0]
        out = np.zeros((m, self.lanes), dtype=np.uint64)
        offsets = self.offsets
        for w in range(self.n_words):
            acc = np.zeros(m, dtype=np.uint64)
            for k in range(offsets[w], offsets[w + 1]):
                left_bit = (left[:, self.left_lane[k]] >> self.left_off[k]) & _ONE
                right_bit = (right[:, self.right_lane[k]] >> self.right_off[k]) & _ONE
                acc |= left_bit & right_bit
            out[:, self.word_lane[w]] |= acc << self.word_off[w]
        return out


@pytest.fixture(scope="module")
def setting():
    universe = Universe(WORDS)
    guide = GuideTable(universe)
    return universe, guide


def test_bench_guide_table_build(benchmark):
    universe = Universe(WORDS)
    guide = benchmark(lambda: GuideTable(universe))
    assert guide.n_splits > 0


def test_bench_scalar_concat(benchmark, setting):
    universe, guide = setting
    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    result = benchmark(lambda: concat_cs(left, right, guide))
    assert result >= 0


def test_bench_scalar_star(benchmark, setting):
    universe, guide = setting
    cs = universe.cs_of_predicate(lambda w: len(w) == 1)
    result = benchmark(lambda: star_cs(cs, guide, universe))
    assert result & universe.eps_bit


def test_bench_vector_concat_batch(benchmark, setting):
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 2**63, size=(4096, universe.lanes),
                         dtype=np.uint64)
    out = benchmark(lambda: kernels.concat(batch, batch))
    assert out.shape == batch.shape


def test_bench_vector_star_batch(benchmark, setting):
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(2)
    batch = rng.integers(0, 2**63, size=(1024, universe.lanes),
                         dtype=np.uint64)
    out = benchmark(lambda: kernels.star(batch))
    assert out.shape == batch.shape


def test_bench_vector_dedupe_batch(benchmark, setting):
    universe, _ = setting
    rng = np.random.default_rng(3)
    batch = rng.integers(0, 1 << 12, size=(4096, universe.lanes),
                         dtype=np.uint64)

    def run():
        seen = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        return seen.insert_batch(batch)

    novelty = benchmark(run)
    assert novelty.shape == (4096,)


def test_vector_kernel_throughput_beats_scalar(setting):
    """The per-candidate cost of the batched kernel must be far below
    the scalar kernel's — the microscopic source of Table 1."""
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(1)
    n = 4096
    batch = rng.integers(0, 2**63, size=(n, universe.lanes), dtype=np.uint64)

    started = time.perf_counter()
    kernels.concat(batch, batch)
    vector_per_item = (time.perf_counter() - started) / n

    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    started = time.perf_counter()
    for _ in range(200):
        concat_cs(left, right, guide)
    scalar_per_item = (time.perf_counter() - started) / 200

    assert vector_per_item < scalar_per_item


def test_bench_hashset_inserts(benchmark):
    def run():
        hs = FingerprintHashSet(initial_capacity=1 << 12)
        for key in range(5000):
            hs.insert((key * 2654435761) % (1 << 61))
        return hs

    hs = benchmark(run)
    assert len(hs) == 5000


def test_bench_universe_build(benchmark):
    words = ["1101001010", "0010110101", "1110001110"]
    universe = benchmark(lambda: Universe(words))
    assert universe.n_words > 50


# ----------------------------------------------------------------------
# Perf-trajectory artifact: BENCH_kernels.json at the repo root
# ----------------------------------------------------------------------

def _time_per_item(fn, items: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock per item, in nanoseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e9 / items


def test_emit_kernel_bench_artifact():
    """Measure every rewritten kernel and record the perf trajectory.

    Asserts the headline acceptance criterion of the bit-sliced kernel
    rewrite: ≥ 10× concat throughput over the seed loop nest.
    """
    universe = Universe(ARTIFACT_WORDS)
    guide = GuideTable(universe)
    kernels = _Kernels(universe, guide)
    seed = _SeedLoopKernels(universe, guide)
    batch_size = 1 << 17 if is_full() else 1 << 16
    repeats = 5
    rng = np.random.default_rng(42)
    batch = rng.integers(0, 2**63, size=(batch_size, universe.lanes),
                         dtype=np.uint64)
    left_int = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right_int = universe.cs_of_predicate(lambda w: w.startswith("1"))

    results = []

    # --- concat: flat gather vs seed loop nest vs scalar kernel -------
    vector_ns = _time_per_item(
        lambda: kernels.concat(batch, batch), batch_size, repeats
    )
    seed_ns = _time_per_item(
        lambda: seed.concat(batch, batch), batch_size, repeats
    )
    scalar_reps = 200
    scalar_ns = _time_per_item(
        lambda: [concat_cs(left_int, right_int, guide)
                 for _ in range(scalar_reps)],
        scalar_reps,
        repeats,
    )
    results.append({
        "op": "concat",
        "batch_size": batch_size,
        "ns_per_candidate": vector_ns,
        "ns_per_candidate_seed": seed_ns,
        "ns_per_candidate_scalar": scalar_ns,
        "speedup_vs_seed": seed_ns / vector_ns,
        "speedup_vs_scalar": scalar_ns / vector_ns,
    })

    # --- star: masked fixpoint vs scalar fixpoint ---------------------
    star_batch = batch[: max(batch_size // 4, 1)]
    star_ns = _time_per_item(
        lambda: kernels.star(star_batch), star_batch.shape[0], repeats
    )
    star_reps = 50
    scalar_star_ns = _time_per_item(
        lambda: [star_cs(left_int, guide, universe) for _ in range(star_reps)],
        star_reps,
        repeats,
    )
    results.append({
        "op": "star",
        "batch_size": int(star_batch.shape[0]),
        "ns_per_candidate": star_ns,
        "ns_per_candidate_scalar": scalar_star_ns,
        "speedup_vs_scalar": scalar_star_ns / star_ns,
    })

    # --- dedupe: batched packed set vs per-row bytes/set loop ---------
    dedupe_batch = rng.integers(0, 1 << 12, size=(batch_size, universe.lanes),
                                dtype=np.uint64)

    def vector_dedupe():
        seen = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        return seen.insert_batch(dedupe_batch)

    def python_dedupe():
        seen = set()
        kept = []
        for k in range(dedupe_batch.shape[0]):
            key = dedupe_batch[k].tobytes()
            if key not in seen:
                seen.add(key)
                kept.append(k)
        return kept

    dedupe_ns = _time_per_item(vector_dedupe, batch_size, repeats)
    python_dedupe_ns = _time_per_item(python_dedupe, batch_size, repeats)
    results.append({
        "op": "dedupe",
        "batch_size": batch_size,
        "ns_per_candidate": dedupe_ns,
        "ns_per_candidate_seed": python_dedupe_ns,
        "speedup_vs_seed": python_dedupe_ns / dedupe_ns,
    })

    artifact = {
        "scale": bench_scale(),
        "universe_words": universe.n_words,
        "guide_splits": guide.n_splits,
        "lanes": universe.lanes,
        "results": results,
    }
    (REPO_ROOT / "BENCH_kernels.json").write_text(
        json.dumps(artifact, indent=2) + "\n", encoding="utf-8"
    )
    print("\n" + json.dumps(artifact, indent=2))

    concat_record = results[0]
    assert concat_record["speedup_vs_seed"] >= 10.0, (
        "flat-gather concat must be >= 10x the seed loop nest, got %.1fx"
        % concat_record["speedup_vs_seed"]
    )
    assert universe.n_words > 0 and len(results) == 3
