"""Micro-benchmarks of the primitive kernels both engines are built on.

Not a paper table, but the evidence behind the Table 1 speed-up: the
batched array-level kernels amortise Python overhead across a whole
candidate block, while the scalar kernels pay it per candidate (see
``docs/ARCHITECTURE.md``, "Kernel design").

Besides the pytest-benchmark timings, :func:`test_emit_kernel_bench_artifact`
writes ``BENCH_kernels.json`` to the repo root — one record per kernel
with ns/candidate and the speedup against both the scalar kernel and the
*seed* vector implementation (the pre-flat-gather Python loop nest,
preserved below as :class:`_SeedLoopKernels`) — so successive PRs have a
perf trajectory to compare against.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _bench_utils import REPO_ROOT, bench_scale, is_full
from repro.core.bitops import concat_cs, star_cs
from repro.core.hashset import FingerprintHashSet, PackedKeySet, splitmix64_array
from repro.core.vector_engine import VectorEngine, _Kernels
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe
from repro.regex.cost import CostFunction
from repro.spec import Spec

WORDS = ["110100", "001011", "111000", "010101"]

#: Universe for the perf-trajectory artifact: 10-char heterogeneous
#: words, like the paper's harder Table 1 rows (larger guide table,
#: multi-lane CSs) — the regime the batched kernels are built for.
ARTIFACT_WORDS = ["1101001010", "0010110101", "1110001110"]

#: The end-to-end workload of the ``level_build`` record: the multi-lane
#: synthesis task of ``tests/test_wide_universe.py``.
WIDE_SPEC = Spec(
    positive=["0110100101", "1010010110", "01"],
    negative=["", "0", "1", "11", "10", "0011001100"],
)

#: The dedupe ns/candidate of the pre-two-tier pipeline as checked in
#: by PR 1 (BENCH_kernels.json at that revision, this workload) — the
#: absolute reference the >= 3x acceptance criterion was stated
#: against.  The one-tier set is *also* measured live, so the asserted
#: ratio is machine-independent.
PR1_DEDUPE_NS = 222.21160889124292

_ONE = np.uint64(1)


class _SeedLoopKernels:
    """The seed implementation of the concat kernel (reference baseline).

    This is the pre-rewrite ``_Kernels.concat``: a Python ``for`` loop
    over every universe word and every guide-table split, i.e. the
    "GPU-sim" engine before the flat-gather rewrite.  Kept verbatim so
    ``BENCH_kernels.json`` always measures the new kernels against the
    true seed behaviour.
    """

    def __init__(self, universe: Universe, guide: GuideTable) -> None:
        flat = guide.flat
        self.n_words = universe.n_words
        self.lanes = universe.lanes
        self.offsets = flat.offsets
        self.left_lane = (flat.left_index >> 6).astype(np.int64)
        self.left_off = (flat.left_index & 63).astype(np.uint64)
        self.right_lane = (flat.right_index >> 6).astype(np.int64)
        self.right_off = (flat.right_index & 63).astype(np.uint64)
        self.word_lane = np.arange(self.n_words, dtype=np.int64) >> 6
        self.word_off = (np.arange(self.n_words, dtype=np.int64) & 63).astype(
            np.uint64
        )
        self.eps_lane = universe.eps_index >> 6
        self.eps_mask = np.uint64(1 << (universe.eps_index & 63))
        self.max_word_length = universe.max_word_length

    def concat(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        m = left.shape[0]
        out = np.zeros((m, self.lanes), dtype=np.uint64)
        offsets = self.offsets
        for w in range(self.n_words):
            acc = np.zeros(m, dtype=np.uint64)
            for k in range(offsets[w], offsets[w + 1]):
                left_bit = (left[:, self.left_lane[k]] >> self.left_off[k]) & _ONE
                right_bit = (right[:, self.right_lane[k]] >> self.right_off[k]) & _ONE
                acc |= left_bit & right_bit
            out[:, self.word_lane[w]] |= acc << self.word_off[w]
        return out

    def star(self, batch: np.ndarray) -> np.ndarray:
        """The seed star: unmasked global fixpoint over the seed concat."""
        m = batch.shape[0]
        result = np.zeros((m, self.lanes), dtype=np.uint64)
        result[:, self.eps_lane] |= self.eps_mask
        for _ in range(self.max_word_length + 1):
            grown = result | self.concat(result, batch)
            if np.array_equal(grown, result):
                break
            result = grown
        return result

    def question(self, batch: np.ndarray) -> np.ndarray:
        out = batch.copy()
        out[:, self.eps_lane] |= self.eps_mask
        return out


class _OneTierKeySet:
    """The pre-two-tier ``PackedKeySet`` (reference baseline, verbatim).

    One full-key table probed with a per-round stable argsort for claim
    arbitration and a full ``(lanes)``-wide compare on every occupied
    probe — the implementation behind the previous BENCH_kernels.json
    dedupe figure, preserved so the artifact always measures the
    two-tier set against the true prior behaviour.
    """

    def __init__(self, lanes, initial_capacity=1024, max_load=0.6):
        capacity = 2
        while capacity < initial_capacity:
            capacity <<= 1
        self._lanes = lanes
        self._keys = np.zeros((capacity, lanes), dtype=np.uint64)
        self._used = np.zeros(capacity, dtype=bool)
        self._mask = capacity - 1
        self._size = 0
        self._max_load = max_load

    def __len__(self):
        return self._size

    @property
    def capacity(self):
        return self._mask + 1

    def _fingerprints(self, rows):
        acc = splitmix64_array(rows[:, 0])
        for lane in range(1, self._lanes):
            acc = splitmix64_array(acc ^ rows[:, lane])
        return acc

    def _reserve(self, extra):
        needed = self._size + extra
        new_capacity = self.capacity
        while needed > self._max_load * new_capacity:
            new_capacity *= 2
        if new_capacity == self.capacity:
            return
        old_keys = self._keys[self._used]
        self._keys = np.zeros((new_capacity, self._lanes), dtype=np.uint64)
        self._used = np.zeros(new_capacity, dtype=bool)
        self._mask = new_capacity - 1
        self._size = 0
        if old_keys.shape[0]:
            self.insert_batch(old_keys)

    def insert_batch(self, rows):
        n = rows.shape[0]
        is_new = np.zeros(n, dtype=bool)
        if n == 0:
            return is_new
        self._reserve(n)
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        idx = (self._fingerprints(rows) & np.uint64(self._mask)).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        while pending.size:
            slots = idx[pending]
            used = self._used[slots]
            advancing = pending[:0]
            occupied = pending[used]
            if occupied.size:
                equal = (self._keys[idx[occupied]] == rows[occupied]).all(axis=1)
                advancing = occupied[~equal]
                idx[advancing] = (idx[advancing] + 1) & self._mask
            losers = pending[:0]
            empty = pending[~used]
            if empty.size:
                order = np.argsort(idx[empty], kind="stable")
                contenders = empty[order]
                slot_ids = idx[contenders]
                first = np.ones(contenders.size, dtype=bool)
                first[1:] = slot_ids[1:] != slot_ids[:-1]
                winners = contenders[first]
                losers = contenders[~first]
                self._keys[idx[winners]] = rows[winners]
                self._used[idx[winners]] = True
                is_new[winners] = True
                self._size += int(winners.size)
            pending = np.sort(np.concatenate((advancing, losers)))
        return is_new


class _PySetDedupe:
    """The seed dedupe: a per-row Python ``set`` loop behind the
    ``insert_batch`` interface."""

    def __init__(self, lanes, **_):
        self._seen = set()

    def __len__(self):
        return len(self._seen)

    def insert_batch(self, rows):
        seen = self._seen
        mask = np.zeros(rows.shape[0], dtype=bool)
        for k in range(rows.shape[0]):
            key = rows[k].tobytes()
            if key not in seen:
                seen.add(key)
                mask[k] = True
        return mask


class _Pr1Kernels(_Kernels):
    """The PR-1 batch kernels, verbatim: per-batch ``bitslice_rows`` of
    both operands, fancy-indexed split gathers, masked-row star."""

    def concat(self, left, right):
        from repro.core.bitops import bitslice_rows, unbitslice_rows

        m = left.shape[0]
        if m == 0 or self.n_splits == 0:
            return np.zeros((m, self.lanes), dtype=np.uint64)
        left_planes = bitslice_rows(left, self.n_words)
        right_planes = bitslice_rows(right, self.n_words)
        m8 = left_planes.shape[1]
        word_planes = np.zeros((self.n_planes, m8), dtype=np.uint8)
        pad = self.pad_width
        block_words = max(1, self.split_block_bytes // (3 * pad * m8))
        for w0 in range(0, self.n_words, block_words):
            w1 = min(w0 + block_words, self.n_words)
            gathered = (
                left_planes[self.left_padded[w0 * pad : w1 * pad]]
                & right_planes[self.right_padded[w0 * pad : w1 * pad]]
            )
            np.bitwise_or.reduce(
                gathered.reshape(w1 - w0, pad, m8),
                axis=1,
                out=word_planes[w0:w1],
            )
        return unbitslice_rows(word_planes, m, self.lanes)

    def star(self, batch):
        m = batch.shape[0]
        result = np.zeros((m, self.lanes), dtype=np.uint64)
        result[:, self.eps_lane] |= self.eps_mask
        if m == 0:
            return result
        active = np.arange(m, dtype=np.int64)
        for _ in range(self.max_word_length + 1):
            current = result[active]
            grown = current | self.concat(current, batch[active])
            changed = (grown != current).any(axis=1)
            if not changed.any():
                break
            active = active[changed]
            result[active] = grown[changed]
            if active.size == 0:
                break
        return result


class _Pr1VectorEngine(VectorEngine):
    """The PR-1 level pipeline (reference baseline, behaviour-verbatim).

    Per-pairing batches with the O(n²) ``triu_indices``/``repeat``+
    ``tile`` index materialisation, per-batch ``bitslice_rows`` through
    the packed-row concat/star adapters, and the one-tier key set —
    the pipeline behind the previous BENCH_kernels.json and wide-spec
    figures.  Enumeration is bit-identical to the current engine (the
    artifact test asserts it), only the data movement differs.
    """

    _SEEN_CLASS = _OneTierKeySet

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seen = self._SEEN_CLASS(
            self.universe.lanes, initial_capacity=1 << 12
        )
        self._kernels = _Pr1Kernels(self.universe, self.guide)

    def _solve_flags(self, rows):
        from repro.core.bitops import popcount_rows

        if self.max_errors == 0:
            pos_ok = ((rows & self._pos_lanes) == self._pos_lanes).all(axis=1)
            neg_ok = ((rows & self._neg_lanes) == 0).all(axis=1)
            return pos_ok & neg_ok
        mistakes = popcount_rows((rows & self._pos_lanes) ^ self._pos_lanes)
        mistakes += popcount_rows(rows & self._neg_lanes)
        return mistakes <= self.max_errors

    def _emit_pair_group(self, op, pairings):
        for left, right, triangular in pairings:
            if self._pr1_emit_pairs(op, left, right, triangular):
                return True
        return False

    def _pr1_emit_pairs(self, op, left, right, triangular):
        from repro.core.engine import OP_CONCAT

        if triangular:
            n = left[1] - left[0]
            i_idx, j_idx = np.triu_indices(n, k=1)
            left_idx = (i_idx + left[0]).astype(np.int64)
            right_idx = (j_idx + left[0]).astype(np.int64)
        else:
            n_left = left[1] - left[0]
            n_right = right[1] - right[0]
            left_idx = np.repeat(
                np.arange(left[0], left[1], dtype=np.int64), n_right
            )
            right_idx = np.tile(
                np.arange(right[0], right[1], dtype=np.int64), n_left
            )
        total = left_idx.shape[0]
        matrix = self._cache.matrix
        for lo in range(0, total, self._max_batch):
            hi = min(lo + self._max_batch, total)
            li = left_idx[lo:hi]
            ri = right_idx[lo:hi]
            left_rows = matrix[li]
            right_rows = matrix[ri]
            if op == OP_CONCAT:
                out = self._kernels.concat(left_rows, right_rows)
            else:
                out = left_rows | right_rows
            if self._handle_batch(op, out, li, ri):
                return True
        return False

    def _emit_unary(self, op, start, end):
        from repro.core.engine import OP_QUESTION

        kernel = (
            self._kernels.question if op == OP_QUESTION else self._kernels.star
        )
        for lo in range(start, end, self._max_batch):
            hi = min(lo + self._max_batch, end)
            out = kernel(self._cache.rows(lo, hi))
            indices = np.arange(lo, hi, dtype=np.int64)
            if self._handle_batch(op, out, indices, None):
                return True
        return False


class _SeedVectorEngine(_Pr1VectorEngine):
    """The seed (pre-PR-1) vector engine: Python loop-nest kernels and
    per-row Python-set dedupe, on the PR-1 emit structure."""

    _SEEN_CLASS = _PySetDedupe

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._kernels = _SeedLoopKernels(self.universe, self.guide)


@pytest.fixture(scope="module")
def setting():
    universe = Universe(WORDS)
    guide = GuideTable(universe)
    return universe, guide


def test_bench_guide_table_build(benchmark):
    universe = Universe(WORDS)
    guide = benchmark(lambda: GuideTable(universe))
    assert guide.n_splits > 0


def test_bench_scalar_concat(benchmark, setting):
    universe, guide = setting
    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    result = benchmark(lambda: concat_cs(left, right, guide))
    assert result >= 0


def test_bench_scalar_star(benchmark, setting):
    universe, guide = setting
    cs = universe.cs_of_predicate(lambda w: len(w) == 1)
    result = benchmark(lambda: star_cs(cs, guide, universe))
    assert result & universe.eps_bit


def test_bench_vector_concat_batch(benchmark, setting):
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 2**63, size=(4096, universe.lanes),
                         dtype=np.uint64)
    out = benchmark(lambda: kernels.concat(batch, batch))
    assert out.shape == batch.shape


def test_bench_vector_star_batch(benchmark, setting):
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(2)
    batch = rng.integers(0, 2**63, size=(1024, universe.lanes),
                         dtype=np.uint64)
    out = benchmark(lambda: kernels.star(batch))
    assert out.shape == batch.shape


def test_bench_vector_dedupe_batch(benchmark, setting):
    universe, _ = setting
    rng = np.random.default_rng(3)
    batch = rng.integers(0, 1 << 12, size=(4096, universe.lanes),
                         dtype=np.uint64)

    def run():
        seen = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        return seen.insert_batch(batch)

    novelty = benchmark(run)
    assert novelty.shape == (4096,)


def test_vector_kernel_throughput_beats_scalar(setting):
    """The per-candidate cost of the batched kernel must be far below
    the scalar kernel's — the microscopic source of Table 1."""
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(1)
    n = 4096
    batch = rng.integers(0, 2**63, size=(n, universe.lanes), dtype=np.uint64)

    started = time.perf_counter()
    kernels.concat(batch, batch)
    vector_per_item = (time.perf_counter() - started) / n

    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    started = time.perf_counter()
    for _ in range(200):
        concat_cs(left, right, guide)
    scalar_per_item = (time.perf_counter() - started) / 200

    assert vector_per_item < scalar_per_item


def test_bench_hashset_inserts(benchmark):
    def run():
        hs = FingerprintHashSet(initial_capacity=1 << 12)
        for key in range(5000):
            hs.insert((key * 2654435761) % (1 << 61))
        return hs

    hs = benchmark(run)
    assert len(hs) == 5000


def test_bench_universe_build(benchmark):
    words = ["1101001010", "0010110101", "1110001110"]
    universe = benchmark(lambda: Universe(words))
    assert universe.n_words > 50


# ----------------------------------------------------------------------
# Perf-trajectory artifact: BENCH_kernels.json at the repo root
# ----------------------------------------------------------------------

def _time_per_item(fn, items: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock per item, in nanoseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e9 / items


def test_emit_kernel_bench_artifact():
    """Measure every rewritten kernel and record the perf trajectory.

    Asserts the headline acceptance criteria of the kernel rewrites:
    >= 10x concat throughput over the seed loop nest, >= 3x dedupe
    throughput over the one-tier set (the implementation behind the
    previous 222 ns/candidate figure), and >= 1.5x end-to-end wide-spec
    level building over the PR-1 pipeline — with the PR-1 and seed
    pipelines measured live, and enumeration bit-identity asserted
    across all three.
    """
    universe = Universe(ARTIFACT_WORDS)
    guide = GuideTable(universe)
    kernels = _Kernels(universe, guide)
    seed = _SeedLoopKernels(universe, guide)
    batch_size = 1 << 17 if is_full() else 1 << 16
    repeats = 5
    rng = np.random.default_rng(42)
    batch = rng.integers(0, 2**63, size=(batch_size, universe.lanes),
                         dtype=np.uint64)
    left_int = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right_int = universe.cs_of_predicate(lambda w: w.startswith("1"))

    results = []

    # --- concat: plane fold vs seed loop nest vs scalar kernel --------
    vector_ns = _time_per_item(
        lambda: kernels.concat(batch, batch), batch_size, repeats
    )
    seed_ns = _time_per_item(
        lambda: seed.concat(batch, batch), batch_size, repeats
    )
    scalar_reps = 200
    scalar_ns = _time_per_item(
        lambda: [concat_cs(left_int, right_int, guide)
                 for _ in range(scalar_reps)],
        scalar_reps,
        repeats,
    )
    results.append({
        "op": "concat",
        "batch_size": batch_size,
        "ns_per_candidate": vector_ns,
        "ns_per_candidate_seed": seed_ns,
        "ns_per_candidate_scalar": scalar_ns,
        "speedup_vs_seed": seed_ns / vector_ns,
        "speedup_vs_scalar": scalar_ns / vector_ns,
    })

    # --- star: plane-resident fixpoint vs seed fixpoint vs scalar -----
    star_batch = batch[: max(batch_size // 4, 1)]
    star_ns = _time_per_item(
        lambda: kernels.star(star_batch), star_batch.shape[0], repeats
    )
    seed_star_batch = star_batch[: max(star_batch.shape[0] // 8, 1)]
    seed_star_ns = _time_per_item(
        lambda: seed.star(seed_star_batch), seed_star_batch.shape[0], 2
    )
    star_reps = 50
    scalar_star_ns = _time_per_item(
        lambda: [star_cs(left_int, guide, universe) for _ in range(star_reps)],
        star_reps,
        repeats,
    )
    results.append({
        "op": "star",
        "batch_size": int(star_batch.shape[0]),
        "ns_per_candidate": star_ns,
        "ns_per_candidate_seed": seed_star_ns,
        "ns_per_candidate_scalar": scalar_star_ns,
        "speedup_vs_seed": seed_star_ns / star_ns,
        "speedup_vs_scalar": scalar_star_ns / star_ns,
    })

    # --- dedupe: two-tier set vs one-tier set vs per-row Python set ---
    dedupe_batch = rng.integers(0, 1 << 12, size=(batch_size, universe.lanes),
                                dtype=np.uint64)
    dedupe_repeats = 15  # cheap op; best-of rides out timer noise

    def dedupe_with(set_class):
        def run():
            seen = set_class(universe.lanes, initial_capacity=1 << 12)
            return seen.insert_batch(dedupe_batch)
        return run

    dedupe_ns = _time_per_item(
        dedupe_with(PackedKeySet), batch_size, dedupe_repeats
    )
    one_tier_ns = _time_per_item(
        dedupe_with(_OneTierKeySet), batch_size, dedupe_repeats
    )
    python_dedupe_ns = _time_per_item(
        dedupe_with(_PySetDedupe), batch_size, 3
    )
    results.append({
        "op": "dedupe_two_tier",
        "batch_size": batch_size,
        "ns_per_candidate": dedupe_ns,
        "ns_per_candidate_seed": python_dedupe_ns,
        "ns_per_candidate_one_tier": one_tier_ns,
        "ns_per_candidate_pr1": PR1_DEDUPE_NS,
        "speedup_vs_seed": python_dedupe_ns / dedupe_ns,
        "speedup_vs_one_tier": one_tier_ns / dedupe_ns,
        "speedup_vs_pr1": PR1_DEDUPE_NS / dedupe_ns,
    })

    # --- level_build: end-to-end wide-spec synthesis ------------------
    wide_universe = Universe(WIDE_SPEC.all_words)
    wide_guide = GuideTable(wide_universe)
    cost_fn = CostFunction.uniform()

    def build_with(engine_class, repeats):
        best = float("inf")
        engine = None
        for _ in range(repeats):
            engine = engine_class(
                WIDE_SPEC, cost_fn, wide_universe, wide_guide,
                max_generated=300_000,
            )
            started = time.perf_counter()
            engine.run(40)
            best = min(best, time.perf_counter() - started)
        return engine, best

    engine, level_s = build_with(VectorEngine, 5)
    pr1_engine, pr1_s = build_with(_Pr1VectorEngine, 3)
    seed_engine, seed_s = build_with(_SeedVectorEngine, 1)
    # The three pipelines are the same enumeration — only data movement
    # differs.  Bit-identity is the licence to compare their clocks.
    assert engine.status == pr1_engine.status == seed_engine.status
    assert engine.generated == pr1_engine.generated == seed_engine.generated
    results.append({
        "op": "level_build",
        "workload": "wide-spec synthesis (%d words, %d lanes)" % (
            wide_universe.n_words, wide_universe.lanes),
        "generated": engine.generated,
        "seconds": level_s,
        "seconds_pr1": pr1_s,
        "seconds_seed": seed_s,
        "ns_per_candidate": level_s / engine.generated * 1e9,
        "ns_per_candidate_pr1": pr1_s / engine.generated * 1e9,
        "ns_per_candidate_seed": seed_s / engine.generated * 1e9,
        "speedup_vs_pr1": pr1_s / level_s,
        "speedup_vs_seed": seed_s / level_s,
    })

    artifact = {
        "scale": bench_scale(),
        "universe_words": universe.n_words,
        "guide_splits": guide.n_splits,
        "lanes": universe.lanes,
        "results": results,
    }
    (REPO_ROOT / "BENCH_kernels.json").write_text(
        json.dumps(artifact, indent=2) + "\n", encoding="utf-8"
    )
    print("\n" + json.dumps(artifact, indent=2))

    concat_record = results[0]
    assert concat_record["speedup_vs_seed"] >= 10.0, (
        "plane-fold concat must be >= 10x the seed loop nest, got %.1fx"
        % concat_record["speedup_vs_seed"]
    )
    dedupe_record = results[2]
    assert dedupe_record["speedup_vs_one_tier"] >= 3.0, (
        "two-tier dedupe must be >= 3x the one-tier set, got %.2fx"
        % dedupe_record["speedup_vs_one_tier"]
    )
    level_record = results[3]
    assert level_record["speedup_vs_pr1"] >= 1.5, (
        "plane-resident level build must be >= 1.5x the PR-1 pipeline, "
        "got %.2fx" % level_record["speedup_vs_pr1"]
    )
    assert all("speedup_vs_seed" in record for record in results)
