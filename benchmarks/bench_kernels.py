"""Micro-benchmarks of the primitive kernels both engines are built on.

Not a paper table, but the evidence behind the Table 1 speed-up: the
batched concatenation kernel amortises Python overhead across a whole
candidate block, while the scalar kernel pays it per candidate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitops import concat_cs, int_to_lanes, star_cs
from repro.core.hashset import FingerprintHashSet
from repro.core.vector_engine import _Kernels
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe

WORDS = ["110100", "001011", "111000", "010101"]


@pytest.fixture(scope="module")
def setting():
    universe = Universe(WORDS)
    guide = GuideTable(universe)
    return universe, guide


def test_bench_guide_table_build(benchmark):
    universe = Universe(WORDS)
    guide = benchmark(lambda: GuideTable(universe))
    assert guide.n_splits > 0


def test_bench_scalar_concat(benchmark, setting):
    universe, guide = setting
    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    result = benchmark(lambda: concat_cs(left, right, guide))
    assert result >= 0


def test_bench_scalar_star(benchmark, setting):
    universe, guide = setting
    cs = universe.cs_of_predicate(lambda w: len(w) == 1)
    result = benchmark(lambda: star_cs(cs, guide, universe))
    assert result & universe.eps_bit


def test_bench_vector_concat_batch(benchmark, setting):
    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 2**63, size=(4096, universe.lanes),
                         dtype=np.uint64)
    out = benchmark(lambda: kernels.concat(batch, batch))
    assert out.shape == batch.shape


def test_vector_kernel_throughput_beats_scalar(setting):
    """The per-candidate cost of the batched kernel must be far below
    the scalar kernel's — the microscopic source of Table 1."""
    import time

    universe, guide = setting
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(1)
    n = 4096
    batch = rng.integers(0, 2**63, size=(n, universe.lanes), dtype=np.uint64)

    started = time.perf_counter()
    kernels.concat(batch, batch)
    vector_per_item = (time.perf_counter() - started) / n

    left = universe.cs_of_predicate(lambda w: w.endswith("0"))
    right = universe.cs_of_predicate(lambda w: w.startswith("1"))
    started = time.perf_counter()
    for _ in range(200):
        concat_cs(left, right, guide)
    scalar_per_item = (time.perf_counter() - started) / 200

    assert vector_per_item < scalar_per_item


def test_bench_hashset_inserts(benchmark):
    def run():
        hs = FingerprintHashSet(initial_capacity=1 << 12)
        for key in range(5000):
            hs.insert((key * 2654435761) % (1 << 61))
        return hs

    hs = benchmark(run)
    assert len(hs) == 5000


def test_bench_universe_build(benchmark):
    words = ["1101001010", "0010110101", "1110001110"]
    universe = benchmark(lambda: Universe(words))
    assert universe.n_words > 50
