"""Shared pytest fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(see ``docs/ARCHITECTURE.md``, "Benchmark harness").  Regenerated
artefacts are written to ``benchmarks/results/`` so a benchmark run
leaves the evidence that EXPERIMENTS.md records.

Scale knob: set ``REPRO_BENCH_SCALE=full`` for the full-size runs used
to produce EXPERIMENTS.md; the default ``quick`` scale keeps a complete
``pytest benchmarks/ --benchmark-only`` run in the minutes range.

Fixture-only by design — plain helpers (scale knob, artefact writers)
live in ``benchmarks/_bench_utils.py`` and are imported explicitly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_utils import RESULTS_DIR


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory artefacts are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
