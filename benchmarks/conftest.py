"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §4).  Regenerated artefacts are written to
``benchmarks/results/`` so a benchmark run leaves the evidence that
EXPERIMENTS.md records.

Scale knob: set ``REPRO_BENCH_SCALE=full`` for the full-size runs used
to produce EXPERIMENTS.md; the default ``quick`` scale keeps a complete
``pytest benchmarks/ --benchmark-only`` run in the minutes range.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Current scale: ``quick`` (default) or ``full``."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def is_full() -> bool:
    """True when running at full (EXPERIMENTS.md) scale."""
    return bench_scale() == "full"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory artefacts are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Write a regenerated table/figure to ``benchmarks/results/``."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
