"""E4 — the outlier table (§4.3 "A note on outliers").

Runs the full scaled suite under (1,1,1,1,1) and reports the share of
runs finishing under each duration threshold, mirroring the paper's

    <2s 89.48% · <3s 94.06% · ... · <800s 100%

row (with thresholds rescaled to this engine).
"""

from __future__ import annotations

from _bench_utils import is_full, save_artifact
from repro.eval.figures import figure1
from repro.eval.tables import outlier_table
from repro.regex.cost import CostFunction


def test_regenerate_outlier_table(benchmark, results_dir):
    count = 15 if is_full() else 6
    budget = 600_000 if is_full() else 200_000

    def run():
        return figure1(
            type1_count=count,
            type2_count=count,
            cost_functions=[CostFunction.uniform()],
            max_generated=budget,
        )

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    durations = data.elapsed[(1, 1, 1, 1, 1)]
    table = outlier_table(durations)
    save_artifact(results_dir, "outliers.txt", table.render())

    # Shape: the distribution is heavily front-loaded — the largest
    # threshold dominates, and percentages increase monotonically.
    row = table.rows[0][1:]
    values = [float(v) for v in row]
    assert values == sorted(values)
    assert values[-1] >= 50.0
