"""Crash-recovery benchmarks: checkpoint resume vs cold re-enumeration,
and the price of worker-death retries.

The evidence behind the durability layer:

* **resume vs cold** — one query is killed after each checkpointed cost
  level (every level at full scale, a spread of levels at quick scale),
  then re-served from the checkpoint store by a fresh session.  Each
  resumed answer must be bit-identical to the uninterrupted reference;
  the artifact records recovery time against cold re-enumeration per
  kill level, which is the measured shape of "recovery cost shrinks as
  the crash lands later in the sweep".
* **retry overhead** — the same job batch served by a pool twice: once
  undisturbed, once with an injected ``SIGKILL`` of a worker mid-job
  (``pool.worker.before_job:kill:1:once``).  The faulted run must
  return identical answers; the artifact records the slowdown plus the
  retry/respawn counters.

:func:`test_emit_recovery_bench_artifact` writes ``BENCH_recovery.json``
to the repo root.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from _bench_utils import REPO_ROOT, is_full
from repro import EngineConfig, Session, Spec, SynthesisRequest
from repro.service import CheckpointStore, ServiceClient, StoreBackedSession
from repro.testing import faults

#: Deep enough that the sweep builds a meaningful number of levels.
RESUME_SPEC = (
    Spec(
        positive=["0110100101", "1010010110"],
        negative=["", "0", "1", "0011001100"],
    )
    if is_full()
    else Spec(
        positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
        negative=["", "0", "1", "00", "11", "010"],
    )
)

RETRY_SPECS = [
    Spec(positive=["00", "010", "0110"], negative=["", "11", "101"]),
    Spec(positive=["10", "101", "100"], negative=["", "0", "11"]),
    Spec(positive=["1", "11", "111"], negative=["", "0", "00"]),
]


def _identity(result):
    return (
        result.status,
        result.regex_str,
        result.cost,
        result.generated,
        result.unique_cs,
        result.levels_built,
    )


def _interrupted_run(config, store, spec, levels):
    session = StoreBackedSession(config, checkpoint_store=store)
    count = {"n": 0}

    def on_progress(event):
        if not event.done:
            count["n"] += 1

    session.synthesize(SynthesisRequest(
        spec=spec,
        on_progress=on_progress,
        cancel=lambda: count["n"] >= levels,
    ))


def _bench_resume(config):
    """Kill-at-level K, resume, compare against cold re-enumeration."""
    started = time.perf_counter()
    reference = Session(config).synthesize(RESUME_SPEC)
    cold_seconds = time.perf_counter() - started
    total_levels = reference.levels_built
    if is_full():
        kill_levels = list(range(1, total_levels + 1))
    else:
        kill_levels = sorted({
            max(1, total_levels // 4),
            max(1, total_levels // 2),
            max(1, (3 * total_levels) // 4),
            total_levels,
        })
    per_level = []
    root = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    try:
        for kill_after in kill_levels:
            store = CheckpointStore(os.path.join(root, "k%d" % kill_after))
            _interrupted_run(config, store, RESUME_SPEC, kill_after)
            started = time.perf_counter()
            resumed = StoreBackedSession(
                config, checkpoint_store=store
            ).synthesize(RESUME_SPEC)
            resume_seconds = time.perf_counter() - started
            assert _identity(resumed) == _identity(reference), (
                "resume after level %d must be bit-identical" % kill_after)
            assert resumed.extra["resumed_levels"] >= kill_after
            per_level.append({
                "kill_after_level": kill_after,
                "resumed_levels": resumed.extra["resumed_levels"],
                "resume_seconds": resume_seconds,
                "speedup_vs_cold": (
                    cold_seconds / resume_seconds if resume_seconds else 0.0
                ),
            })
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if is_full():
        deepest = per_level[-1]
        assert deepest["resume_seconds"] < cold_seconds, (
            "resuming from the deepest checkpoint must beat cold "
            "re-enumeration (%.3fs vs %.3fs)"
            % (deepest["resume_seconds"], cold_seconds))
    return {
        "cold_seconds": cold_seconds,
        "levels_built": total_levels,
        "per_kill_level": per_level,
    }


def _run_pool(store_dir, fault_spec=None):
    sentinel_dir = None
    if fault_spec is not None:
        sentinel_dir = tempfile.mkdtemp(prefix="repro-bench-faults-")
        os.environ[faults.ENV_FAULTS] = fault_spec
        os.environ[faults.ENV_FAULTS_DIR] = sentinel_dir
    faults.reset()
    try:
        started = time.perf_counter()
        with ServiceClient(
            workers=2,
            config=EngineConfig(backend="vector"),
            store_dir=store_dir,
            retry_backoff_s=0.02,
        ) as client:
            handles = [client.submit(spec) for spec in RETRY_SPECS]
            results = [handle.result(timeout=600) for handle in handles]
            stats = client.stats
        return time.perf_counter() - started, results, stats
    finally:
        if fault_spec is not None:
            os.environ.pop(faults.ENV_FAULTS, None)
            os.environ.pop(faults.ENV_FAULTS_DIR, None)
            shutil.rmtree(sentinel_dir, ignore_errors=True)
        faults.reset()


def _bench_retry_overhead():
    """The same pool batch with and without an injected worker death."""
    root = tempfile.mkdtemp(prefix="repro-bench-retry-")
    try:
        baseline_seconds, baseline, _ = _run_pool(os.path.join(root, "a"))
        faulted_seconds, faulted, stats = _run_pool(
            os.path.join(root, "b"),
            fault_spec="pool.worker.before_job:kill:1:once",
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    assert [(r.status, r.regex_str, r.cost) for r in baseline] == [
        (r.status, r.regex_str, r.cost) for r in faulted
    ], "answers must survive an injected worker death unchanged"
    assert stats["retries"] >= 1, "the injected death must trigger a retry"
    assert stats["respawns"] >= 1, "the dead worker must be respawned"
    assert stats["quarantined"] == 0
    attempts = [r.extra.get("attempts") for r in faulted]
    assert max(attempts) == 2, "exactly one job should need a second attempt"
    return {
        "jobs": len(RETRY_SPECS),
        "baseline_seconds": baseline_seconds,
        "faulted_seconds": faulted_seconds,
        "retry_overhead_seconds": faulted_seconds - baseline_seconds,
        "retries": stats["retries"],
        "respawns": stats["respawns"],
        "attempts_per_job": attempts,
    }


def test_emit_recovery_bench_artifact():
    """Measure crash recovery and record the evidence."""
    artifact = {
        "benchmark": "crash recovery",
        "scale": "full" if is_full() else "quick",
        "cpu_count": os.cpu_count(),
        "resume": _bench_resume(EngineConfig(backend="vector")),
        "retry": _bench_retry_overhead(),
    }
    (REPO_ROOT / "BENCH_recovery.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_recovery.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
