"""Service-layer benchmarks: pool-of-N vs solo Session, cold vs warm start.

The evidence behind the concurrent synthesis service:

* **pool vs solo** — the AlphaRegex suite swept over several cost
  functions, served once by a single warm :class:`Session` and once by
  a pool of 4 worker processes through the same
  :func:`repro.eval.harness.run_suite` entry point.  Answers must be
  bit-identical; the speedup is recorded (and asserted only on
  multi-core machines — on one core a process pool can only add
  overhead, which the artifact records honestly via ``cpu_count``).
* **cold vs warm start** — a staging-heavy workload (few large
  universes, cheap sweeps) against a persistent store: the first pool
  builds and persists the staging artifacts, the second pool *loads*
  them.  The warm run must beat the cold run, and the per-worker
  session stats must show store loads displacing builds.

:func:`test_emit_service_bench_artifact` writes ``BENCH_service.json``
to the repo root.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time

from _bench_utils import REPO_ROOT, is_full
from repro import CostFunction, Session, SynthesisRequest, Spec
from repro.eval.harness import records_to_json, run_suite
from repro.service import ServiceClient
from repro.suites.alpharegex_suite import easy_tasks

WORKERS = 4

#: Cost functions of the suite sweep (uniform, expensive star, expensive
#: literal) — enough to exercise both "success" and "budget" verdicts.
SWEEP_COST_FUNCTIONS = (
    (1, 1, 1, 1, 1),
    (1, 1, 10, 1, 1),
    (4, 1, 1, 1, 1),
)


def suite_jobs():
    """The pool-vs-solo workload: ``(name, spec, cost_fn)`` triples."""
    n_examples = 16 if is_full() else 14
    cost_fns = SWEEP_COST_FUNCTIONS if is_full() else SWEEP_COST_FUNCTIONS[:2]
    jobs = []
    for task in easy_tasks():
        spec = task.build_spec(n_pos=n_examples, n_neg=n_examples,
                               max_len=7, clamp=True)
        for values in cost_fns:
            jobs.append(("%s/c%s" % (task.name, "".join(map(str, values))),
                         spec, CostFunction.from_tuple(values)))
    return jobs


def staging_heavy_specs():
    """The warm-start workload: partitions of a few large word sets.

    The universes are big (long random words → large infix closures),
    the sweeps tiny (``max_cost=3``), so staging dominates and the
    cold-vs-warm difference isolates build-vs-load.
    """
    rng = random.Random(7)
    n_universes = 6 if is_full() else 4
    word_count, word_len = (64, 24) if is_full() else (48, 22)
    requests = []
    for u in range(n_universes):
        words = sorted({
            "".join(rng.choice("01") for _ in range(word_len))
            for _ in range(word_count)
        })
        for k in range(2):  # two partitions per universe share staging
            positives = words[k::2]
            negatives = [w for w in words if w not in positives]
            requests.append(SynthesisRequest(
                spec=Spec(positives, negatives), max_cost=3))
    return requests


def _keys(results):
    return [(r.status, r.regex_str, r.cost) for r in results]


def _run_requests(client, requests):
    handles = [client.submit(request) for request in requests]
    return [handle.result(timeout=600) for handle in handles]


def test_emit_service_bench_artifact():
    """Measure the service layer and record the perf trajectory."""
    jobs = suite_jobs()
    budget = 3_000_000

    # Solo baseline: one warm session, sequential.
    session = Session()
    named_specs_by_cf = {}
    for name, spec, cost_fn in jobs:
        named_specs_by_cf.setdefault(cost_fn.as_tuple(), []).append(
            (name, spec, cost_fn))
    started = time.perf_counter()
    solo_records = []
    for grouped in named_specs_by_cf.values():
        cost_fn = grouped[0][2]
        solo_records.extend(run_suite(
            [(name, spec) for name, spec, _ in grouped],
            cost_fn=cost_fn, max_generated=budget, session=session))
    solo_seconds = time.perf_counter() - started

    # Pool of 4 via the same harness entry point.
    store_root = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        started = time.perf_counter()
        with ServiceClient(workers=WORKERS,
                           store_dir=os.path.join(store_root, "suite"),
                           per_worker_depth=2) as client:
            pool_records = []
            for grouped in named_specs_by_cf.values():
                cost_fn = grouped[0][2]
                pool_records.extend(run_suite(
                    [(name, spec) for name, spec, _ in grouped],
                    cost_fn=cost_fn, max_generated=budget, client=client))
            pool_stats = client.stats
        pool_seconds = time.perf_counter() - started

        solo_keys = [(r.name, r.status, r.regex, r.cost)
                     for r in solo_records]
        pool_keys = [(r.name, r.status, r.regex, r.cost)
                     for r in pool_records]
        identical = solo_keys == pool_keys
        assert identical, "pool answers must be bit-identical to solo"

        pool_speedup = solo_seconds / pool_seconds if pool_seconds else 0.0
        cpu_count = os.cpu_count() or 1
        if cpu_count >= 2:
            assert pool_speedup > 1.0, (
                "pool-of-%d must beat a solo session on %d cores, got %.2fx"
                % (WORKERS, cpu_count, pool_speedup))

        # Cold vs warm start against one persistent store.
        warm_requests = staging_heavy_specs()
        warm_store = os.path.join(store_root, "warmstart")
        started = time.perf_counter()
        with ServiceClient(workers=WORKERS, store_dir=warm_store) as client:
            cold_results = _run_requests(client, warm_requests)
            cold_worker_stats = client.worker_stats()
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        with ServiceClient(workers=WORKERS, store_dir=warm_store) as client:
            warm_results = _run_requests(client, warm_requests)
            warm_worker_stats = client.worker_stats()
        warm_seconds = time.perf_counter() - started

        assert _keys(cold_results) == _keys(warm_results), (
            "warm-started answers must be bit-identical to cold ones")
        cold_builds = sum(w["session"].get("staging_builds", 0)
                          for w in cold_worker_stats)
        warm_builds = sum(w["session"].get("staging_builds", 0)
                          for w in warm_worker_stats)
        warm_loads = sum(w["session"].get("store_loads", 0)
                         for w in warm_worker_stats)
        assert cold_builds > 0, "cold run must build staging"
        assert warm_builds == 0, (
            "warm run must not rebuild staging (built %d)" % warm_builds)
        assert warm_loads > 0, "warm run must load persisted staging"
        warm_speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
        assert warm_speedup > 1.0, (
            "warm start (persisted staging) must beat the cold run, "
            "got %.2fx" % warm_speedup)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    artifact = {
        "benchmark": "concurrent synthesis service",
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "suite_jobs": len(jobs),
        "solo_session_seconds": solo_seconds,
        "pool_seconds": pool_seconds,
        "pool_speedup": pool_speedup,
        "pool_scheduler": {k: pool_stats[k] for k in
                           ("affinity_hits", "steals", "cold_assignments")},
        "results_bit_identical": identical,
        "warmstart_requests": len(warm_requests),
        "cold_start_seconds": cold_seconds,
        "warm_start_seconds": warm_seconds,
        "warm_start_speedup": warm_speedup,
        "warm_staging_builds": warm_builds,
        "warm_staging_loads": warm_loads,
        # Per-record detail of the solo baseline, including each run's
        # per-phase timing (staging / enumerate / dedupe / solve /
        # store) from the engine's own timers.
        "solo_run_records": records_to_json(solo_records),
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_service.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
