"""Serving-layer benchmarks: cold vs warm staging and batched serving.

The evidence behind the session API redesign: staging (universe + guide
table) is paid once per example-string set, and ``synthesize_many``
serves a shared-universe batch from one enumeration sweep.

:func:`test_emit_session_bench_artifact` writes ``BENCH_session.json``
to the repo root — cold-vs-warm staging times and the 50-spec batch
throughput against 50 cold ``synthesize()`` calls — and asserts the
acceptance criteria: ≥ 3× batch speedup with results bit-identical to
the one-shot facade.
"""

from __future__ import annotations

import json
import time


from _bench_utils import REPO_ROOT
from repro import Session, Spec, synthesize

#: The shared word set of the batch workload: the paper's introduction
#: example strings.  Every batched spec is a partition of this set, so
#: all 50 share one universe ``ic(P ∪ N)``.
BATCH_WORDS = ("", "0", "1", "00", "10", "100", "1000", "1001", "101",
               "1010", "11", "010")

BATCH_SIZE = 50


def batch_specs(count: int = BATCH_SIZE) -> list:
    """``count`` deterministic non-trivial partitions of the word set."""
    specs = []
    for k in range(count):
        positives = [w for i, w in enumerate(BATCH_WORDS)
                     if (i + k) % 3 == 0]
        if not positives or len(positives) == len(BATCH_WORDS):
            positives = [BATCH_WORDS[k % len(BATCH_WORDS)]]
        negatives = [w for w in BATCH_WORDS if w not in positives]
        specs.append(Spec(positives, negatives))
    return specs


def test_bench_cold_staging(benchmark):
    spec = batch_specs(1)[0]

    def cold():
        return Session().staging_for(spec)

    universe, _ = benchmark(cold)
    assert universe.n_words > 10


def test_bench_warm_staging(benchmark):
    spec = batch_specs(1)[0]
    session = Session()
    session.staging_for(spec)
    universe, _ = benchmark(lambda: session.staging_for(spec))
    assert universe.n_words > 10
    assert session.stats.staging_builds == 1


def test_bench_synthesize_many(benchmark):
    specs = batch_specs(10)

    def serve():
        return Session().synthesize_many(specs)

    results = benchmark(serve)
    assert all(r.found for r in results)


# ----------------------------------------------------------------------
# Perf-trajectory artifact: BENCH_session.json at the repo root
# ----------------------------------------------------------------------

def test_emit_session_bench_artifact():
    """Measure the serving layer and record the perf trajectory.

    Asserts the headline acceptance criteria of the session redesign:
    ``synthesize_many`` on a 50-spec shared-universe batch is ≥ 3×
    faster than 50 cold ``synthesize()`` calls, with bit-identical
    results, and warm staging lookups cost (much) less than cold
    builds.
    """
    specs = batch_specs(BATCH_SIZE)

    # Cold vs warm staging.
    probe = Session()
    started = time.perf_counter()
    probe.staging_for(specs[0])
    staging_cold_s = time.perf_counter() - started
    started = time.perf_counter()
    probe.staging_for(specs[0])
    staging_warm_s = time.perf_counter() - started
    assert probe.stats.staging_builds == 1

    # 50 cold facade calls (each pays staging + its own sweep).
    started = time.perf_counter()
    cold_results = [synthesize(spec) for spec in specs]
    cold_s = time.perf_counter() - started

    # One session, one staging build, one shared sweep.
    session = Session()
    started = time.perf_counter()
    warm_results = session.synthesize_many(specs)
    warm_s = time.perf_counter() - started
    assert session.stats.staging_builds == 1
    assert session.stats.batch_requests == BATCH_SIZE

    identical = all(
        (a.status, a.regex_str, a.cost) == (b.status, b.regex_str, b.cost)
        for a, b in zip(cold_results, warm_results)
    )
    assert identical, "batched results must be bit-identical to the facade"

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= 3.0, (
        "synthesize_many must be >= 3x faster than cold calls, got %.2fx"
        % speedup
    )

    artifact = {
        "benchmark": "session serving layer",
        "batch_size": BATCH_SIZE,
        "universe_words": warm_results[0].universe_size,
        # Per-phase attribution (staging / enumerate / dedupe / solve /
        # store) so future perf PRs can see *where* serving time goes
        # without re-instrumenting: one solo run and the shared batched
        # sweep, straight from the engines' own phase timers.
        "phase_seconds_solo": cold_results[0].extra.get("phase_seconds"),
        "phase_seconds_batch_sweep": warm_results[0].extra.get(
            "phase_seconds"
        ),
        "staging_cold_seconds": staging_cold_s,
        "staging_warm_seconds": staging_warm_s,
        "staging_speedup": (
            staging_cold_s / staging_warm_s if staging_warm_s > 0
            else float("inf")
        ),
        "cold_synthesize_seconds": cold_s,
        "synthesize_many_seconds": warm_s,
        "batch_speedup": speedup,
        "batch_throughput_specs_per_second": BATCH_SIZE / warm_s,
        "results_bit_identical": identical,
        "solved": sum(1 for r in warm_results if r.found),
    }
    (REPO_ROOT / "BENCH_session.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_session.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
