"""Intra-query sharding benchmark: serial vs sharded level construction.

One hard specification, one engine run, all cores: the sharded vector
engine (``shard_workers=N``) must produce **bit-identical**
enumeration-visible state to the serial sweep — asserted on every run —
and beat it on wall-clock when real cores are available.  Following the
service benchmark's convention, the speedup is asserted only on
multi-core machines (``cpu_count >= 4``); a single-core box records the
honest slowdown (process round-trips with no parallelism to pay for
them) in the artifact instead.

:func:`test_emit_shard_bench_artifact` writes ``BENCH_shard.json`` to
the repo root.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import REPO_ROOT, is_full
from repro.core.bitops import lanes_to_int
from repro.core.vector_engine import VectorEngine
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe
from repro.regex.cost import CostFunction
from repro.spec import Spec

#: Shards of the headline comparison (the acceptance criterion's
#: "multi-core speedup >= 1.5x" is stated against this fan-out).
SHARD_WORKERS = 4

#: Quick-scale workload: a deep 4-lane alternation task — ~1.1M
#: candidates over 13 cost levels, with the late levels' pair groups
#: far above the sharding threshold.
QUICK_SPEC = Spec(
    positive=["01101001011", "10100101101", "01011010011", "10010110101"],
    negative=["", "0", "1", "11", "10", "00110011001", "11100011101",
              "00000111110", "10110100101", "01100110100"],
)

#: Full-scale workload (nightly): ~68M candidates over 17 levels.
FULL_SPEC = Spec(
    positive=["0110100101", "1010010110", "0101101001", "1001011010",
              "0110011010"],
    negative=["", "0", "1", "11", "10", "0011001100", "1110001110",
              "0000011111", "1011010010", "1100110011", "0101010101"],
)


def run_once(spec, shard_workers):
    universe = Universe(spec.all_words, alphabet=spec.alphabet)
    guide = GuideTable(universe)
    engine = VectorEngine(
        spec,
        CostFunction.uniform(),
        universe,
        guide,
        shard_workers=shard_workers,
    )
    started = time.perf_counter()
    status = engine.run(60)
    elapsed = time.perf_counter() - started
    return engine, status, elapsed


def state_digest(engine, status):
    """Enumeration-visible state, hashed small enough to compare."""
    cache = engine.cache
    rows = np.ascontiguousarray(cache.matrix[: len(cache)])
    return {
        "status": status,
        "generated": engine.generated,
        "stored": len(cache),
        "levels_built": engine.levels_built,
        "level_stats": engine.level_stats,
        "solution": engine.solution,
        "solution_cost": engine.solution_cost,
        "rows_hash": hash(rows.tobytes()),
        "provenance_hash": hash(tuple(cache.provenance)),
    }


def measure(spec, name):
    serial_engine, serial_status, serial_seconds = run_once(spec, 1)
    shard_engine, shard_status, shard_seconds = run_once(spec, SHARD_WORKERS)
    serial_state = state_digest(serial_engine, serial_status)
    shard_state = state_digest(shard_engine, shard_status)
    assert serial_state == shard_state, (
        "sharded run diverged from serial on %s" % name
    )
    assert serial_status == "success"
    # Spot-check a stored row end-to-end, beyond the digest.
    assert lanes_to_int(serial_engine.cache.row(0)) == lanes_to_int(
        shard_engine.cache.row(0)
    )
    speedup = serial_seconds / shard_seconds if shard_seconds else 0.0
    return {
        "workload": name,
        "universe_words": serial_engine.universe.n_words,
        "lanes": serial_engine.universe.lanes,
        "generated": serial_engine.generated,
        "stored": len(serial_engine.cache),
        "levels_built": serial_engine.levels_built,
        "serial_seconds": serial_seconds,
        "sharded_seconds": shard_seconds,
        "shard_workers": SHARD_WORKERS,
        "speedup": speedup,
        "bit_identical": True,
    }


def test_emit_shard_bench_artifact():
    """Measure sharded-vs-serial level construction; write the artifact."""
    records = [measure(QUICK_SPEC, "wide-spec synthesis (quick)")]
    if is_full():
        records.append(measure(FULL_SPEC, "wide-spec synthesis (full)"))

    cpu_count = os.cpu_count() or 1
    headline = records[-1]
    if cpu_count >= 4:
        assert headline["speedup"] >= 1.5, (
            "sharded engine (%d shards) must reach >= 1.5x on %d cores, "
            "got %.2fx" % (SHARD_WORKERS, cpu_count, headline["speedup"])
        )

    artifact = {
        "benchmark": "intra-query sharded level construction",
        "cpu_count": cpu_count,
        "scale": "full" if is_full() else "quick",
        "results": records,
    }
    (REPO_ROOT / "BENCH_shard.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("\nBENCH_shard.json:")
    print(json.dumps(artifact, indent=2, sort_keys=True))
